package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Printer renders an AST back to mini-C source text. It is used to emit
// instrumented source (step 4 of the paper's workflow: "map to source" +
// "instrument"), and for golden tests of the parser.
type Printer struct {
	sb     strings.Builder
	indent int

	// BeforeStmt, if non-nil, is called before each statement is printed
	// and may emit extra lines (e.g. vs_tick calls).
	BeforeStmt func(p *Printer, s Stmt)
	// AfterStmt likewise runs after each statement.
	AfterStmt func(p *Printer, s Stmt)
}

// Format renders prog with default settings.
func Format(prog *Program) string {
	var p Printer
	return p.Print(prog)
}

// Print renders the program and returns the source text.
func (p *Printer) Print(prog *Program) string {
	p.sb.Reset()
	for _, g := range prog.Globals {
		p.printGlobal(g)
	}
	if len(prog.Globals) > 0 {
		p.sb.WriteByte('\n')
	}
	for i, f := range prog.Funcs {
		if i > 0 {
			p.sb.WriteByte('\n')
		}
		p.printFunc(f)
	}
	return p.sb.String()
}

// Line writes one line at the current indent; used by instrumentation hooks.
func (p *Printer) Line(text string) {
	p.writeIndent()
	p.sb.WriteString(text)
	p.sb.WriteByte('\n')
}

func (p *Printer) writeIndent() {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
}

func (p *Printer) printGlobal(g *GlobalDecl) {
	p.writeIndent()
	if g.Type.IsArray() {
		fmt.Fprintf(&p.sb, "global %s %s[%s];\n", g.Type.Elem(), g.Name, ExprString(g.Len))
		return
	}
	if g.Init != nil {
		fmt.Fprintf(&p.sb, "global %s %s = %s;\n", g.Type, g.Name, ExprString(g.Init))
	} else {
		fmt.Fprintf(&p.sb, "global %s %s;\n", g.Type, g.Name)
	}
}

func (p *Printer) printFunc(f *FuncDecl) {
	p.writeIndent()
	p.sb.WriteString("func ")
	p.sb.WriteString(f.Name)
	p.sb.WriteByte('(')
	for i, prm := range f.Params {
		if i > 0 {
			p.sb.WriteString(", ")
		}
		if prm.Type.IsArray() {
			fmt.Fprintf(&p.sb, "%s %s[]", prm.Type.Elem(), prm.Name)
		} else {
			fmt.Fprintf(&p.sb, "%s %s", prm.Type, prm.Name)
		}
	}
	p.sb.WriteByte(')')
	if f.Ret != TypeVoid {
		fmt.Fprintf(&p.sb, " %s", f.Ret)
	}
	p.sb.WriteByte(' ')
	p.printBlock(f.Body)
}

func (p *Printer) printBlock(b *BlockStmt) {
	p.sb.WriteString("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.printStmt(s)
	}
	p.indent--
	p.writeIndent()
	p.sb.WriteString("}\n")
}

func (p *Printer) printStmt(s Stmt) {
	if p.BeforeStmt != nil {
		p.BeforeStmt(p, s)
	}
	switch st := s.(type) {
	case *BlockStmt:
		p.writeIndent()
		p.printBlock(st)
	case *VarDecl:
		p.writeIndent()
		p.sb.WriteString(varDeclString(st))
		p.sb.WriteString(";\n")
	case *AssignStmt:
		p.writeIndent()
		p.sb.WriteString(assignString(st))
		p.sb.WriteString(";\n")
	case *IfStmt:
		p.writeIndent()
		p.printIfChain(st)
	case *ForStmt:
		p.writeIndent()
		fmt.Fprintf(&p.sb, "for (%s; %s; %s) ",
			simpleStmtString(st.Init), optExprString(st.Cond), simpleStmtString(st.Post))
		p.printBlock(st.Body)
	case *WhileStmt:
		p.writeIndent()
		fmt.Fprintf(&p.sb, "while (%s) ", ExprString(st.Cond))
		p.printBlock(st.Body)
	case *ReturnStmt:
		p.writeIndent()
		if st.Value != nil {
			fmt.Fprintf(&p.sb, "return %s;\n", ExprString(st.Value))
		} else {
			p.sb.WriteString("return;\n")
		}
	case *BreakStmt:
		p.Line("break;")
		// Line already handled indent+newline; avoid double hooks below.
	case *ContinueStmt:
		p.Line("continue;")
	case *ExprStmt:
		p.writeIndent()
		p.sb.WriteString(ExprString(st.X))
		p.sb.WriteString(";\n")
	}
	if p.AfterStmt != nil {
		p.AfterStmt(p, s)
	}
}

func (p *Printer) printIfChain(st *IfStmt) {
	fmt.Fprintf(&p.sb, "if (%s) ", ExprString(st.Cond))
	p.printBlock(st.Then)
	if st.Else == nil {
		return
	}
	// Splice "else" onto the previous line's closing brace.
	out := p.sb.String()
	if strings.HasSuffix(out, "}\n") {
		p.sb.Reset()
		p.sb.WriteString(out[:len(out)-1])
		p.sb.WriteString(" else ")
	}
	switch e := st.Else.(type) {
	case *IfStmt:
		p.printIfChain(e)
	case *BlockStmt:
		p.printBlock(e)
	}
}

func varDeclString(d *VarDecl) string {
	if d.Type.IsArray() {
		return fmt.Sprintf("%s %s[%s]", d.Type.Elem(), d.Name, ExprString(d.Len))
	}
	if d.Init != nil {
		return fmt.Sprintf("%s %s = %s", d.Type, d.Name, ExprString(d.Init))
	}
	return fmt.Sprintf("%s %s", d.Type, d.Name)
}

func assignString(a *AssignStmt) string {
	return fmt.Sprintf("%s = %s", ExprString(a.Target), ExprString(a.Value))
}

// simpleStmtString renders a for-header init/post statement (no semicolon).
func simpleStmtString(s Stmt) string {
	switch st := s.(type) {
	case nil:
		return ""
	case *VarDecl:
		return varDeclString(st)
	case *AssignStmt:
		return assignString(st)
	case *ExprStmt:
		return ExprString(st.X)
	}
	return "?"
}

func optExprString(e Expr) string {
	if e == nil {
		return ""
	}
	return ExprString(e)
}

var opText = map[Kind]string{
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Eq: "==", NotEq: "!=", Lt: "<", Gt: ">", LtEq: "<=", GtEq: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!",
}

// ExprString renders an expression as source text, fully parenthesizing
// nested binary operations of different precedence.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ident:
		return x.Name
	case *IntLit:
		return strconv.FormatInt(x.Value, 10)
	case *FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *StringLit:
		return quoteString(x.Value)
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", operandString(x.X, x.Op, false), opText[x.Op], operandString(x.Y, x.Op, true))
	case *UnaryExpr:
		// Unary operators bind tighter than every binary operator, so a
		// binary child always needs parentheses.
		// A nested unary needs them too, so that "-(-x)" does not lex as
		// the "--" token.
		inner := ExprString(x.X)
		switch x.X.(type) {
		case *BinaryExpr, *UnaryExpr:
			inner = "(" + inner + ")"
		}
		return opText[x.Op] + inner
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, ExprString(a))
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Array.Name, ExprString(x.Index))
	}
	return "?"
}

// operandString parenthesizes child when its precedence is looser than the
// parent operator's — or equal, on the right of a left-associative operator —
// preserving evaluation order on re-parse.
func operandString(child Expr, parentOp Kind, right bool) string {
	s := ExprString(child)
	if b, ok := child.(*BinaryExpr); ok {
		cp, pp := binPrec(b.Op), binPrec(parentOp)
		if cp < pp || (right && cp == pp) {
			return "(" + s + ")"
		}
	}
	if _, ok := child.(*UnaryExpr); ok && parentOp != Not {
		return "(" + s + ")"
	}
	return s
}

// quoteString renders a string literal using only the escapes the lexer
// understands (\n, \t, \\, \"); every other byte is written raw, which the
// lexer also accepts. strconv.Quote would emit Go escapes like \x93 that
// mini-C rejects, breaking the print→re-parse round trip on non-printable
// input (found by FuzzParse).
func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
