package minic

import (
	"strings"
	"unicode"
)

// Lexer turns mini-C source text into a token stream. It tracks line/column
// positions and skips // line comments and /* block */ comments.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the entire source, returning the token list terminated by an
// EOF token, or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			open := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(open, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or a lexical error.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			sb.WriteByte(lx.advance())
		}
		text := sb.String()
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: start}, nil
	case isDigit(c):
		var sb strings.Builder
		isFloat := false
		for lx.off < len(lx.src) && (isDigit(lx.peek()) || lx.peek() == '.' || lx.peek() == 'e' || lx.peek() == 'E') {
			ch := lx.peek()
			if ch == '.' {
				if isFloat {
					break
				}
				// Require a digit after the dot to be part of the number.
				if !isDigit(lx.peek2()) {
					break
				}
				isFloat = true
			}
			if ch == 'e' || ch == 'E' {
				// Exponent: e[+-]?digits.
				next := lx.peek2()
				if next != '+' && next != '-' && !isDigit(next) {
					break
				}
				isFloat = true
				sb.WriteByte(lx.advance()) // e
				if lx.peek() == '+' || lx.peek() == '-' {
					sb.WriteByte(lx.advance())
				}
				continue
			}
			sb.WriteByte(lx.advance())
		}
		kind := INT
		if isFloat {
			kind = FLOAT
		}
		return Token{Kind: kind, Text: sb.String(), Pos: start}, nil
	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return Token{}, errf(start, "unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.off >= len(lx.src) {
					return Token{}, errf(start, "unterminated string literal")
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(esc)
				default:
					return Token{}, errf(start, "unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: STRING, Text: sb.String(), Pos: start}, nil
	}

	// Operators and punctuation.
	two := func(k Kind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: start}, nil
	}
	one := func(k Kind) (Token, error) {
		lx.advance()
		return Token{Kind: k, Pos: start}, nil
	}
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ',':
		return one(Comma)
	case ';':
		return one(Semicolon)
	case '+':
		switch lx.peek2() {
		case '+':
			return two(PlusPlus)
		case '=':
			return two(PlusEq)
		}
		return one(Plus)
	case '-':
		switch lx.peek2() {
		case '-':
			return two(MinusMinus)
		case '=':
			return two(MinusEq)
		}
		return one(Minus)
	case '*':
		if lx.peek2() == '=' {
			return two(StarEq)
		}
		return one(Star)
	case '/':
		if lx.peek2() == '=' {
			return two(SlashEq)
		}
		return one(Slash)
	case '%':
		return one(Percent)
	case '=':
		if lx.peek2() == '=' {
			return two(Eq)
		}
		return one(Assign)
	case '!':
		if lx.peek2() == '=' {
			return two(NotEq)
		}
		return one(Not)
	case '<':
		if lx.peek2() == '=' {
			return two(LtEq)
		}
		return one(Lt)
	case '>':
		if lx.peek2() == '=' {
			return two(GtEq)
		}
		return one(Gt)
	case '&':
		if lx.peek2() == '&' {
			return two(AndAnd)
		}
	case '|':
		if lx.peek2() == '|' {
			return two(OrOr)
		}
	}
	return Token{}, errf(start, "unexpected character %q", string(c))
}
