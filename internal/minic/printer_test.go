package minic

import (
	"strings"
	"testing"
)

func TestPrintWhileAndControl(t *testing.T) {
	src := `func f() {
    int x = 10;
    while (x > 0) {
        x -= 1;
        if (x == 5) {
            continue;
        }
        if (x == 2) {
            break;
        }
    }
    return;
}`
	out := Format(MustParse(src))
	for _, want := range []string{"while (x > 0) {", "continue;", "break;", "return;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Round trip.
	if out2 := Format(MustParse(out)); out2 != out {
		t.Errorf("not a fixed point:\n%s\nvs\n%s", out, out2)
	}
}

func TestPrintElseIfChainRendering(t *testing.T) {
	src := `func f(int x) int {
    if (x < 0) {
        return 0;
    } else if (x < 10) {
        return 1;
    } else {
        return 2;
    }
}`
	out := Format(MustParse(src))
	if !strings.Contains(out, "} else if (x < 10) {") || !strings.Contains(out, "} else {") {
		t.Errorf("else-if chain rendering:\n%s", out)
	}
	if out2 := Format(MustParse(out)); out2 != out {
		t.Error("else-if chain not a fixed point")
	}
}

func TestPrintGlobalsAndArrays(t *testing.T) {
	src := `global int N = 4;
global float A[16];
global int Z;

func f(int v[], float w[]) {
    v[0] = v[1] + 2;
}`
	out := Format(MustParse(src))
	for _, want := range []string{
		"global int N = 4;", "global float A[16];", "global int Z;",
		"func f(int v[], float w[]) {", "v[0] = v[1] + 2;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintFloatLiteralsKeepDot(t *testing.T) {
	out := Format(MustParse(`func f() { float x = 2.0; float y = 1.0e9; x = y; }`))
	if !strings.Contains(out, "2.0") {
		t.Errorf("float literal lost its decimal point:\n%s", out)
	}
	// Must re-parse as floats, not ints.
	p2 := MustParse(out)
	d := p2.Func("f").Body.Stmts[0].(*VarDecl)
	if _, ok := d.Init.(*FloatLit); !ok {
		t.Errorf("literal re-parsed as %T", d.Init)
	}
}

func TestPrintStringEscapes(t *testing.T) {
	out := Format(MustParse(`func f() { print("a\nb\t\"q\""); }`))
	if !strings.Contains(out, `"a\nb\t\"q\""`) {
		t.Errorf("string escaping:\n%s", out)
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("escaped output does not re-parse: %v", err)
	}
}

func TestTokenStrings(t *testing.T) {
	for k := EOF; k <= Not; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("token kind %d unnamed", k)
		}
	}
	tok := Token{Kind: IDENT, Text: "abc"}
	if !strings.Contains(tok.String(), "abc") {
		t.Errorf("token String = %q", tok.String())
	}
	if (Token{Kind: Plus}).String() != "+" {
		t.Error("operator token String wrong")
	}
}

func TestExprStringIndexAndCall(t *testing.T) {
	prog := MustParse(`func f(int a[]) int { return g(a[2 + 1], -a[0]); }`)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	got := ExprString(ret.Value)
	if got != "g(a[2 + 1], -(a[0]))" && got != "g(a[2 + 1], -a[0])" {
		t.Errorf("ExprString = %q", got)
	}
}
