package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

const figure4Src = `
global int GLBV = 40;

func foo(int x, int y) int {
    int value = 0;
    for (int i = 0; i < x; i++) {
        value += y;
        for (int j = 0; j < 10; j++) {
            value -= 1;
        }
    }
    if (x > GLBV) {
        value -= x * y;
    }
    return value;
}

func main() {
    int count = 0;
    for (int n = 0; n < 100; n++) {
        for (int k = 0; k < 10; k++) {
            foo(n, k);
            foo(k, n);
        }
        for (int k = 0; k < 10; k++) {
            count++;
        }
        mpi_barrier();
    }
}
`

func TestParseFigure4(t *testing.T) {
	prog, err := Parse(figure4Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "GLBV" {
		t.Fatalf("globals = %+v", prog.Globals)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(prog.Funcs))
	}
	foo := prog.Func("foo")
	if foo == nil || len(foo.Params) != 2 || foo.Ret != TypeInt {
		t.Fatalf("foo = %+v", foo)
	}
	main := prog.Func("main")
	if main == nil || main.Ret != TypeVoid {
		t.Fatal("main missing or wrong return type")
	}
	// main: count decl + one outer for loop.
	if len(main.Body.Stmts) != 2 {
		t.Fatalf("main stmts = %d", len(main.Body.Stmts))
	}
	outer, ok := main.Body.Stmts[1].(*ForStmt)
	if !ok {
		t.Fatalf("main stmt 1 = %T", main.Body.Stmts[1])
	}
	// outer body: two for loops + barrier call.
	if len(outer.Body.Stmts) != 3 {
		t.Fatalf("outer body stmts = %d", len(outer.Body.Stmts))
	}
	if _, ok := outer.Body.Stmts[2].(*ExprStmt); !ok {
		t.Fatalf("expected barrier call, got %T", outer.Body.Stmts[2])
	}
}

func TestParseDesugar(t *testing.T) {
	prog := MustParse(`func f() { int x = 0; x++; x--; x += 2; x -= 3; x *= 4; x /= 5; }`)
	body := prog.Func("f").Body.Stmts
	wantOps := []Kind{Plus, Minus, Plus, Minus, Star, Slash}
	if len(body) != 7 {
		t.Fatalf("stmts = %d", len(body))
	}
	for i, op := range wantOps {
		as, ok := body[i+1].(*AssignStmt)
		if !ok {
			t.Fatalf("stmt %d = %T", i+1, body[i+1])
		}
		be, ok := as.Value.(*BinaryExpr)
		if !ok || be.Op != op {
			t.Fatalf("stmt %d: value = %v, want op %s", i+1, as.Value, op)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`func f() int { return 1 + 2 * 3 < 4 && 5 == 6 || 7 > 8; }`)
	ret := prog.Func("f").Body.Stmts[0].(*ReturnStmt)
	top, ok := ret.Value.(*BinaryExpr)
	if !ok || top.Op != OrOr {
		t.Fatalf("top op = %v", ret.Value)
	}
	land, ok := top.X.(*BinaryExpr)
	if !ok || land.Op != AndAnd {
		t.Fatalf("lhs of || = %v", top.X)
	}
	lt, ok := land.X.(*BinaryExpr)
	if !ok || lt.Op != Lt {
		t.Fatalf("lhs of && = %v", land.X)
	}
	add, ok := lt.X.(*BinaryExpr)
	if !ok || add.Op != Plus {
		t.Fatalf("lhs of < = %v", lt.X)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != Star {
		t.Fatalf("rhs of + = %v", add.Y)
	}
}

func TestParseArrays(t *testing.T) {
	prog := MustParse(`
global float A[100];
func f(int v[], float w[]) float {
    int b[10];
    b[0] = 1;
    A[b[0]] = w[2] + 1.5;
    return A[0];
}`)
	g := prog.Global("A")
	if g == nil || g.Type != TypeFloatArray {
		t.Fatalf("global A = %+v", g)
	}
	f := prog.Func("f")
	if f.Params[0].Type != TypeIntArray || f.Params[1].Type != TypeFloatArray {
		t.Fatalf("params = %+v", f.Params)
	}
	as, ok := f.Body.Stmts[2].(*AssignStmt)
	if !ok {
		t.Fatalf("stmt 2 = %T", f.Body.Stmts[2])
	}
	if _, ok := as.Target.(*IndexExpr); !ok {
		t.Fatalf("target = %T", as.Target)
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog := MustParse(`func f(int x) int {
    if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; }
}`)
	ifs := prog.Func("f").Body.Stmts[0].(*IfStmt)
	elif, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else = %T", ifs.Else)
	}
	if _, ok := elif.Else.(*BlockStmt); !ok {
		t.Fatalf("final else = %T", elif.Else)
	}
}

func TestParseWhileBreakContinue(t *testing.T) {
	prog := MustParse(`func f() {
    int x = 0;
    while (x < 10) {
        x++;
        if (x == 3) { continue; }
        if (x == 7) { break; }
    }
}`)
	w, ok := prog.Func("f").Body.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", prog.Func("f").Body.Stmts[1])
	}
	if len(w.Body.Stmts) != 3 {
		t.Fatalf("while body = %d stmts", len(w.Body.Stmts))
	}
}

func TestParseForVariants(t *testing.T) {
	// Empty clauses.
	prog := MustParse(`func f() { int i = 0; for (;;) { i++; if (i > 3) { break; } } }`)
	fs := prog.Func("f").Body.Stmts[1].(*ForStmt)
	if fs.Init != nil || fs.Cond != nil || fs.Post != nil {
		t.Fatal("expected empty for clauses")
	}
	// Assign init instead of decl.
	prog = MustParse(`func f() { int i; for (i = 0; i < 3; i++) { } }`)
	fs = prog.Func("f").Body.Stmts[1].(*ForStmt)
	if _, ok := fs.Init.(*AssignStmt); !ok {
		t.Fatalf("init = %T", fs.Init)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"func",                   // truncated
		"global void v;",         // void global
		"func f() { 1 + 2; }",    // expression statement that is not a call
		"func f() { 3 = x; }",    // assign to literal
		"func f() { int x = ; }", // missing expr
		"func f() { if x { } }",  // missing parens
		"x = 1;",                 // statement at top level
		"func f(void v) { }",     // void param
		"func f() { for (int i = 0; i < 10) { } }", // missing clause
		"func f() { foo(1,; }",                     // bad call
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// TestPrintRoundTrip checks parse→print→parse→print is a fixed point.
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{figure4Src, `
global int N = 1024;
global float A[64];

func kernel(int n, float data[]) float {
    float acc = 0.0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0 && n > 3 || i == 1) {
            acc += data[i] * 2.0;
        } else {
            acc -= 1.0e-3;
        }
    }
    while (acc > 100.0) {
        acc /= 2.0;
    }
    return -acc;
}

func main() {
    float r = kernel(N, A);
    print("result", r);
}
`}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		out1 := Format(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nsource:\n%s", err, out1)
		}
		out2 := Format(p2)
		if out1 != out2 {
			t.Errorf("printer not a fixed point:\n--- first\n%s\n--- second\n%s", out1, out2)
		}
	}
}

// Property: any expression built from a small grammar survives a
// print→parse→print round trip.
func TestQuickExprRoundTrip(t *testing.T) {
	gen := func(seed int64) bool {
		e := genExpr(seed, 4)
		src := "func f(int a, int b, float c) { g(" + ExprString(e) + "); }"
		prog, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: parse error %v for %q", seed, err, src)
			return false
		}
		call := prog.Func("f").Body.Stmts[0].(*ExprStmt).X.(*CallExpr)
		return ExprString(call.Args[0]) == ExprString(e)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// genExpr deterministically builds an expression from a seed.
func genExpr(seed int64, depth int) Expr {
	next := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		v := seed >> 33
		if v < 0 {
			v = -v
		}
		return v
	}
	var build func(d int) Expr
	build = func(d int) Expr {
		if d <= 0 {
			switch next() % 3 {
			case 0:
				return &IntLit{Value: next() % 1000}
			case 1:
				return &Ident{Name: []string{"a", "b", "c"}[next()%3]}
			default:
				return &IntLit{Value: next() % 7}
			}
		}
		switch next() % 6 {
		case 0:
			return &BinaryExpr{Op: []Kind{Plus, Minus, Star, Slash, Percent}[next()%5], X: build(d - 1), Y: build(d - 1)}
		case 1:
			return &BinaryExpr{Op: []Kind{Lt, Gt, LtEq, GtEq, Eq, NotEq}[next()%6], X: build(d - 1), Y: build(d - 1)}
		case 2:
			return &BinaryExpr{Op: []Kind{AndAnd, OrOr}[next()%2], X: build(d - 1), Y: build(d - 1)}
		case 3:
			return &UnaryExpr{Op: Minus, X: build(d - 1)}
		case 4:
			return &CallExpr{Name: "h", Args: []Expr{build(d - 1)}}
		default:
			return build(0)
		}
	}
	return build(depth)
}

func TestWalkStmtsAndExprs(t *testing.T) {
	prog := MustParse(figure4Src)
	var loops, calls int
	for _, f := range prog.Funcs {
		WalkStmts(f.Body, func(s Stmt) {
			switch st := s.(type) {
			case *ForStmt:
				loops++
			case *ExprStmt:
				WalkExprs(st.X, func(e Expr) {
					if _, ok := e.(*CallExpr); ok {
						calls++
					}
				})
			}
		})
	}
	if loops != 5 {
		t.Errorf("loops = %d, want 5", loops)
	}
	if calls != 3 { // foo, foo, mpi_barrier
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestFormatContainsStructure(t *testing.T) {
	out := Format(MustParse(figure4Src))
	for _, want := range []string{"global int GLBV = 40;", "func foo(int x, int y) int {", "mpi_barrier();", "value = value + y;"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}
