package minic

// Type is a mini-C value type.
type Type int

// Value types.
const (
	TypeVoid Type = iota
	TypeInt
	TypeFloat
	TypeIntArray
	TypeFloatArray
)

// String names the type as it appears in source.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeIntArray:
		return "int[]"
	case TypeFloatArray:
		return "float[]"
	}
	return "?"
}

// Elem returns the element type of an array type (or the type itself).
func (t Type) Elem() Type {
	switch t {
	case TypeIntArray:
		return TypeInt
	case TypeFloatArray:
		return TypeFloat
	}
	return t
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t == TypeIntArray || t == TypeFloatArray }

// Node is implemented by every AST node.
type Node interface {
	Pos() Pos
}

// Scope classifies where a resolved identifier binds at runtime. The
// resolver pass (internal/resolve) assigns it at compile time; the VM
// executes identifier accesses as direct slot loads without any name
// lookup. ScopeUnresolved marks names with no visible declaration — they
// fault only if the referencing statement actually executes, matching the
// dynamic behaviour of a scope-map interpreter.
type Scope uint8

// Identifier binding scopes.
const (
	ScopeUnresolved Scope = iota
	ScopeLocal            // slot in the enclosing function's frame
	ScopeGlobal           // slot in the per-rank global array
)

// ---------- Top level ----------

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
	Source  string // original source text, for diagnostics and mapping

	// Resolved reports whether the slot-resolution pass has annotated this
	// AST (set by internal/resolve; ir.Build always runs it).
	Resolved bool
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *GlobalDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// GlobalDecl is a file-scope variable declaration:
// global int NAME = expr;  or  global int NAME[len];
type GlobalDecl struct {
	NamePos Pos
	Name    string
	Type    Type
	Len     Expr // array length for array globals, else nil
	Init    Expr // scalar initializer, may be nil (zero value)

	// Slot is the global's index in the per-rank global array, assigned by
	// the resolver pass (declaration order).
	Slot int32
}

// Pos returns the declaration position.
func (g *GlobalDecl) Pos() Pos { return g.NamePos }

// Param is a function parameter.
type Param struct {
	NamePos Pos
	Name    string
	Type    Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	FuncPos Pos
	Name    string
	Params  []Param
	Ret     Type
	Body    *BlockStmt

	// NumSlots is the function's flat frame size — parameters plus every
	// local declaration, each with a distinct slot — assigned by the
	// resolver pass. Parameters occupy slots 0..len(Params)-1.
	NumSlots int32
}

// Pos returns the position of the func keyword.
func (f *FuncDecl) Pos() Pos { return f.FuncPos }

// ---------- Statements ----------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a { ... } statement list.
type BlockStmt struct {
	LBrace Pos
	Stmts  []Stmt
}

// VarDecl declares a local variable: int x = e;  int a[n];
type VarDecl struct {
	NamePos Pos
	Name    string
	Type    Type
	Len     Expr // array length, else nil
	Init    Expr // may be nil

	// Slot is the declaration's frame index, assigned by the resolver pass.
	// Distinct declarations always get distinct slots, so shadowing and
	// same-name declarations in sibling blocks cannot collide.
	Slot int32
}

// AssignStmt assigns to a variable or array element. Compound assignments
// (+=, ++, ...) are desugared by the parser into plain assignments whose RHS
// is a binary expression referencing the target.
type AssignStmt struct {
	Target Expr // *Ident or *IndexExpr
	Value  Expr
}

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	IfPos Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt // *BlockStmt, *IfStmt (else-if), or nil
}

// ForStmt is a C-style counted loop. The parser requires the canonical
// shape for(init; cond; post) so loop analysis can identify the induction
// variable; init and post may be nil.
type ForStmt struct {
	ForPos Pos
	Init   Stmt // *VarDecl or *AssignStmt, or nil
	Cond   Expr // may be nil (infinite)
	Post   Stmt // *AssignStmt, or nil
	Body   *BlockStmt

	// LoopID is assigned during IR construction; unique per program.
	LoopID int
}

// WhileStmt is a condition-only loop.
type WhileStmt struct {
	WhilePos Pos
	Cond     Expr
	Body     *BlockStmt
	LoopID   int
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	RetPos Pos
	Value  Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ BrPos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ CtPos Pos }

// ExprStmt evaluates an expression for effect (always a call).
type ExprStmt struct{ X Expr }

func (*BlockStmt) stmtNode()    {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Pos implementations.
func (s *BlockStmt) Pos() Pos    { return s.LBrace }
func (s *VarDecl) Pos() Pos      { return s.NamePos }
func (s *AssignStmt) Pos() Pos   { return s.Target.Pos() }
func (s *IfStmt) Pos() Pos       { return s.IfPos }
func (s *ForStmt) Pos() Pos      { return s.ForPos }
func (s *WhileStmt) Pos() Pos    { return s.WhilePos }
func (s *ReturnStmt) Pos() Pos   { return s.RetPos }
func (s *BreakStmt) Pos() Pos    { return s.BrPos }
func (s *ContinueStmt) Pos() Pos { return s.CtPos }
func (s *ExprStmt) Pos() Pos     { return s.X.Pos() }

// ---------- Expressions ----------

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident references a variable (local, parameter, or global).
type Ident struct {
	NamePos Pos
	Name    string

	// Scope/Slot are the identifier's compile-time binding, assigned by the
	// resolver pass: ScopeLocal indexes the enclosing function's frame,
	// ScopeGlobal the per-rank global array.
	Scope Scope
	Slot  int32
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos Pos
	Value  int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LitPos Pos
	Value  float64
}

// StringLit is a string literal (only valid as a call argument, e.g. print).
type StringLit struct {
	LitPos Pos
	Value  string
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   Kind // Plus..Percent, Eq..GtEq, AndAnd, OrOr
	X, Y Expr
}

// UnaryExpr is a unary operation (-x or !x).
type UnaryExpr struct {
	OpPos Pos
	Op    Kind // Minus or Not
	X     Expr
}

// CallExpr is a function call: user-defined, builtin, or extern.
type CallExpr struct {
	NamePos Pos
	Name    string
	Args    []Expr

	// CallID is assigned during IR construction; unique per program.
	CallID int

	// Target is the called user-defined function, pre-bound by the resolver
	// pass; nil for builtins and unknown names.
	Target *FuncDecl

	// Builtin is the dense builtin-dispatch index (a resolve.Builtin value;
	// 0 = none), assigned by the resolver pass when Target is nil.
	Builtin int16
}

// IndexExpr is an array element access a[i].
type IndexExpr struct {
	Array *Ident
	Index Expr
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StringLit) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}

// Pos implementations.
func (e *Ident) Pos() Pos      { return e.NamePos }
func (e *IntLit) Pos() Pos     { return e.LitPos }
func (e *FloatLit) Pos() Pos   { return e.LitPos }
func (e *StringLit) Pos() Pos  { return e.LitPos }
func (e *BinaryExpr) Pos() Pos { return e.X.Pos() }
func (e *UnaryExpr) Pos() Pos  { return e.OpPos }
func (e *CallExpr) Pos() Pos   { return e.NamePos }
func (e *IndexExpr) Pos() Pos  { return e.Array.Pos() }

// WalkExprs applies fn to e and every sub-expression, pre-order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExprs(x.X, fn)
		WalkExprs(x.Y, fn)
	case *UnaryExpr:
		WalkExprs(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *IndexExpr:
		WalkExprs(x.Array, fn)
		WalkExprs(x.Index, fn)
	}
}

// WalkStmts applies fn to s and every nested statement, pre-order. It does
// not descend into expressions; use WalkExprs for those.
func WalkStmts(s Stmt, fn func(Stmt)) {
	if s == nil {
		return
	}
	fn(s)
	switch x := s.(type) {
	case *BlockStmt:
		for _, sub := range x.Stmts {
			WalkStmts(sub, fn)
		}
	case *IfStmt:
		WalkStmts(x.Then, fn)
		WalkStmts(x.Else, fn)
	case *ForStmt:
		WalkStmts(x.Init, fn)
		WalkStmts(x.Post, fn)
		WalkStmts(x.Body, fn)
	case *WhileStmt:
		WalkStmts(x.Body, fn)
	}
}
