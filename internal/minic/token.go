// Package minic implements the front end for the mini-C language that
// vSensor analyzes: a lexer, a recursive-descent parser, an AST with full
// source positions, and a pretty-printer used for emitting instrumented
// source.
//
// The language is a small, C-like subset sufficient for writing the loop
// nests, branches, function calls, and message-passing operations that the
// v-sensor identification algorithm (paper §3) reasons about. It replaces
// the paper's LLVM-IR front end.
package minic

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT    // integer literal
	FLOAT  // floating-point literal
	STRING // string literal

	// Keywords.
	KwFunc
	KwGlobal
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwFor
	KwWhile
	KwReturn
	KwBreak
	KwContinue

	// Punctuation and operators.
	LParen     // (
	RParen     // )
	LBrace     // {
	RBrace     // }
	LBracket   // [
	RBracket   // ]
	Comma      // ,
	Semicolon  // ;
	Assign     // =
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	PlusPlus   // ++
	MinusMinus // --
	PlusEq     // +=
	MinusEq    // -=
	StarEq     // *=
	SlashEq    // /=
	Eq         // ==
	NotEq      // !=
	Lt         // <
	Gt         // >
	LtEq       // <=
	GtEq       // >=
	AndAnd     // &&
	OrOr       // ||
	Not        // !
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "int literal", FLOAT: "float literal",
	STRING: "string literal",
	KwFunc: "func", KwGlobal: "global", KwInt: "int", KwFloat: "float",
	KwVoid: "void", KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semicolon: ";",
	Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	PlusPlus: "++", MinusMinus: "--",
	PlusEq: "+=", MinusEq: "-=", StarEq: "*=", SlashEq: "/=",
	Eq: "==", NotEq: "!=", Lt: "<", Gt: ">", LtEq: "<=", GtEq: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"func": KwFunc, "global": KwGlobal, "int": KwInt, "float": KwFloat,
	"void": KwVoid, "if": KwIf, "else": KwElse, "for": KwFor,
	"while": KwWhile, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position has been set.
func (p Pos) Valid() bool { return p.Line > 0 }

// Before reports whether p occurs strictly before q in the source.
func (p Pos) Before(q Pos) bool {
	return p.Line < q.Line || (p.Line == q.Line && p.Col < q.Col)
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // raw text for IDENT, INT, FLOAT, STRING
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT, STRING:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic tied to a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
