package detect

import (
	"testing"

	"vsensor/internal/ir"
)

func netSensors(n int) []Sensor {
	out := make([]Sensor, n)
	for i := range out {
		out[i] = Sensor{ID: i, Type: ir.Network, ProcessFixed: true}
	}
	return out
}

// Ten network sensors, each producing one slice record per 1000µs but
// staggered by 100µs: the merged stream judges the network every 100µs,
// catching a degradation narrower than any single sensor's cadence.
func TestComponentMergingImprovesResolution(t *testing.T) {
	tr := NewComponentTracker(netSensors(10), 100_000, 0.8)
	// 20 major slices; sensors staggered; degradation in the narrow band
	// [5.2ms, 5.5ms) only.
	for major := int64(0); major < 20; major++ {
		for s := 0; s < 10; s++ {
			at := major*1_000_000 + int64(s)*100_000
			avg := 100.0
			if at >= 5_200_000 && at < 5_500_000 {
				avg = 260
			}
			tr.OnSlice(SliceRecord{Sensor: s, Rank: 0, SliceNs: at, Count: 10, AvgNs: avg})
		}
	}
	events := tr.Finish()
	if len(events) != 3 {
		t.Fatalf("events = %+v", events)
	}
	for i, e := range events {
		want := int64(5_200_000 + i*100_000)
		if e.SliceNs != want || e.Type != ir.Network {
			t.Errorf("event %d = %+v, want sub-slice %d", i, e, want)
		}
		if e.Perf > 0.45 {
			t.Errorf("event perf = %v", e.Perf)
		}
	}
}

func TestComponentSeparation(t *testing.T) {
	sensors := []Sensor{
		{ID: 0, Type: ir.Computation},
		{ID: 1, Type: ir.Network},
	}
	tr := NewComponentTracker(sensors, 1_000_000, 0.8)
	for i := int64(0); i < 10; i++ {
		// Computation degrades midway; network stays clean.
		comp := 100.0
		if i >= 5 {
			comp = 300
		}
		tr.OnSlice(SliceRecord{Sensor: 0, SliceNs: i * 1_000_000, Count: 1, AvgNs: comp})
		tr.OnSlice(SliceRecord{Sensor: 1, SliceNs: i * 1_000_000, Count: 1, AvgNs: 50})
	}
	for _, e := range tr.Finish() {
		if e.Type != ir.Computation {
			t.Errorf("unexpected %v event: %+v", e.Type, e)
		}
	}
}

func TestComponentTrackerIgnoresUnknownSensors(t *testing.T) {
	tr := NewComponentTracker(netSensors(1), 0, 0)
	tr.OnSlice(SliceRecord{Sensor: 99, SliceNs: 0, Count: 1, AvgNs: 100})
	tr.OnSlice(SliceRecord{Sensor: 0, SliceNs: 0, Count: 1, AvgNs: 0}) // degenerate
	if events := tr.Finish(); len(events) != 0 {
		t.Errorf("events = %+v", events)
	}
}

func TestFanout(t *testing.T) {
	a, b := &sliceCollector{}, &sliceCollector{}
	f := Fanout{a, b}
	f.OnSlice(SliceRecord{Sensor: 1, SliceNs: 5})
	if len(a.recs) != 1 || len(b.recs) != 1 {
		t.Error("fanout did not duplicate")
	}
}

// The tracker composes with a Detector through Fanout.
func TestDetectorToTrackerPipeline(t *testing.T) {
	tr := NewComponentTracker(netSensors(2), 1_000_000, 0.8)
	col := &sliceCollector{}
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000}, Fanout{col, tr})
	feed(d, 1, 0, 100_000, 20_000, 40, 0)         // clean
	feed(d, 1, 4_000_000, 100_000, 60_000, 40, 0) // degraded
	d.Finish()
	events := tr.Finish()
	if len(events) == 0 {
		t.Fatal("merged stream missed the degradation")
	}
	if len(col.recs) == 0 {
		t.Fatal("fanout starved the other emitter")
	}
}
