package detect

import (
	"errors"
	"testing"
	"testing/quick"

	"vsensor/internal/ir"
	"vsensor/internal/obs"
	"vsensor/internal/vm"
)

type sliceCollector struct {
	recs []SliceRecord
}

func (c *sliceCollector) OnSlice(r SliceRecord) error { c.recs = append(c.recs, r); return nil }

func mkSensors() []Sensor {
	return []Sensor{
		{ID: 0, Type: ir.Computation, ProcessFixed: true, Name: "comp"},
		{ID: 1, Type: ir.Network, ProcessFixed: true, Name: "net"},
	}
}

// feed produces n records of the given duration spaced evenly.
func feed(d *Detector, sensor int, start, spacing, dur int64, n int, miss float64) {
	for i := 0; i < n; i++ {
		s := start + int64(i)*spacing
		d.OnRecord(vm.Record{Sensor: sensor, Rank: 0, Start: s, End: s + dur, Instr: 100, MissRate: miss})
	}
}

func TestSmoothingAggregatesPerSlice(t *testing.T) {
	col := &sliceCollector{}
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000}, col)
	// 100 records of 10µs each, spaced 100µs apart → exactly 10 slices of
	// 1000µs with 10 records each.
	feed(d, 0, 0, 100_000, 10_000, 100, 0)
	d.Finish()
	if len(col.recs) != 10 {
		t.Fatalf("slices = %d, want 10", len(col.recs))
	}
	var total int32
	for _, r := range col.recs {
		total += r.Count
		if r.AvgNs != 10_000 {
			t.Errorf("slice avg = %v", r.AvgNs)
		}
	}
	if total != 100 {
		t.Errorf("records accounted = %d", total)
	}
	// One analysis per slice, not per record (paper §5.1).
	if d.Analyses() != 10 {
		t.Errorf("analyses = %d, want 10", d.Analyses())
	}
}

func TestSmoothingFiltersShortNoise(t *testing.T) {
	// Alternating fast/slow records within a slice must not trigger
	// variance, but a sustained slowdown must.
	col := &sliceCollector{}
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000, VarianceThreshold: 0.8}, col)
	// Slices 0..4: alternating 9µs and 11µs (avg 10µs) — smooth.
	for i := 0; i < 500; i++ {
		dur := int64(9_000)
		if i%2 == 1 {
			dur = 11_000
		}
		s := int64(i) * 10_000
		d.OnRecord(vm.Record{Sensor: 0, Start: s, End: s + dur})
	}
	// Slices 5..9: sustained 2x slowdown.
	for i := 500; i < 1000; i++ {
		s := int64(i) * 10_000
		d.OnRecord(vm.Record{Sensor: 0, Start: s, End: s + 20_000})
	}
	d.Finish()
	if len(d.Events()) == 0 {
		t.Fatal("sustained slowdown not detected")
	}
	for _, e := range d.Events() {
		if e.SliceNs < 5_000_000 {
			t.Errorf("false positive in smooth region at %dns", e.SliceNs)
		}
		if e.Type != ir.Computation {
			t.Errorf("event type = %v", e.Type)
		}
	}
}

func TestNormalizationAgainstFastest(t *testing.T) {
	col := &sliceCollector{}
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000, VarianceThreshold: 0.9}, col)
	// First slice 10µs, second 20µs → perf 0.5 → variance event.
	feed(d, 0, 0, 10_000, 10_000, 100, 0)
	feed(d, 0, 1_000_000, 10_000, 20_000, 100, 0)
	d.Finish()
	if len(d.Events()) != 1 {
		t.Fatalf("events = %+v", d.Events())
	}
	if p := d.Events()[0].Perf; p < 0.49 || p > 0.51 {
		t.Errorf("perf = %v, want ~0.5", p)
	}
}

// Fig. 13: without dynamic rules, high-miss records look like variance;
// with miss-rate buckets they form their own group and only the genuine
// outlier remains.
func TestDynamicRuleMissRateGrouping(t *testing.T) {
	mkRecords := func(d *Detector) {
		type rec struct {
			dur  int64
			miss float64
		}
		// Mirrors the paper's example: wall-times 3,3,7,3,5,3,7,3,3,3 with
		// records 2 and 6 having high cache miss; record 4 (5s, low miss)
		// is the genuine variance.
		recs := []rec{{3, .05}, {3, .05}, {7, .45}, {3, .05}, {5, .05}, {3, .05}, {7, .45}, {3, .05}, {3, .05}, {3, .05}}
		for i, r := range recs {
			s := int64(i) * 1_000_000 // one record per slice
			d.OnRecord(vm.Record{Sensor: 0, Start: s, End: s + r.dur*100_000, MissRate: r.miss})
		}
		d.Finish()
	}

	plain := New(0, mkSensors(), Config{SliceNs: 1_000_000, VarianceThreshold: 0.7}, nil)
	mkRecords(plain)
	if len(plain.Events()) < 3 {
		t.Errorf("without dynamic rules records 2,4,6 all look like variance: %d events", len(plain.Events()))
	}

	grouped := New(0, mkSensors(), Config{SliceNs: 1_000_000, VarianceThreshold: 0.7, MissRateBuckets: []float64{0.2, 1.01}}, nil)
	mkRecords(grouped)
	if len(grouped.Events()) != 1 {
		t.Fatalf("with dynamic rules only record 4 is variance: %+v", grouped.Events())
	}
	e := grouped.Events()[0]
	if e.Group != 0 || e.SliceNs != 4_000_000 {
		t.Errorf("wrong variance located: %+v", e)
	}
}

func TestShortSensorDisabled(t *testing.T) {
	col := &sliceCollector{}
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000, DisableShortNs: 500, WarmupRecords: 8}, col)
	// Sensor 0: 100ns records → disabled after 8 observations.
	feed(d, 0, 0, 1_000, 100, 50, 0)
	// Sensor 1: 50µs records → stays enabled.
	feed(d, 1, 0, 100_000, 50_000, 50, 0)
	d.Finish()
	if !d.Disabled(0) {
		t.Error("short sensor not disabled")
	}
	if d.Disabled(1) {
		t.Error("long sensor wrongly disabled")
	}
	if d.Dropped() == 0 {
		t.Error("no records dropped after disabling")
	}
	for _, r := range col.recs {
		if r.Sensor == 0 && r.SliceNs > 0 {
			t.Errorf("disabled sensor still emitting: %+v", r)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := New(3, nil, Config{}, nil)
	if d.cfg.SliceNs != DefaultSliceNs || d.cfg.VarianceThreshold != DefaultVarianceThreshold || d.cfg.WarmupRecords != DefaultWarmup {
		t.Errorf("defaults not applied: %+v", d.cfg)
	}
}

// Property: every consumed record is accounted in exactly one emitted slice
// (when no sensor is disabled), and slice averages lie within the min/max
// record durations.
func TestQuickSliceAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(n int64) int64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := (rng >> 33) % n
			if v < 0 {
				v += n
			}
			return v
		}
		col := &sliceCollector{}
		d := New(0, mkSensors(), Config{SliceNs: 1_000_000}, col)
		n := int(next(200)) + 1
		var minDur, maxDur int64 = 1 << 62, 0
		t0 := int64(0)
		for i := 0; i < n; i++ {
			t0 += next(300_000)
			dur := next(50_000) + 1
			if dur < minDur {
				minDur = dur
			}
			if dur > maxDur {
				maxDur = dur
			}
			d.OnRecord(vm.Record{Sensor: 0, Start: t0, End: t0 + dur})
		}
		d.Finish()
		var total int32
		for _, r := range col.recs {
			total += r.Count
			if r.AvgNs < float64(minDur) || r.AvgNs > float64(maxDur) {
				return false
			}
		}
		return int(total) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Out-of-order slice boundaries: a record belonging to an earlier slice
// after a later one opened simply starts a new aggregation window; totals
// must still balance.
func TestSliceKeying(t *testing.T) {
	col := &sliceCollector{}
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000}, col)
	d.OnRecord(vm.Record{Sensor: 0, Start: 100, End: 200})
	d.OnRecord(vm.Record{Sensor: 0, Start: 2_500_000, End: 2_500_100})
	d.OnRecord(vm.Record{Sensor: 0, Start: 2_600_000, End: 2_600_100})
	d.Finish()
	if len(col.recs) != 2 {
		t.Fatalf("slices = %+v", col.recs)
	}
	if col.recs[0].Count != 1 || col.recs[1].Count != 2 {
		t.Errorf("counts = %d,%d", col.recs[0].Count, col.recs[1].Count)
	}
}

// failingEmitter rejects every delivery after the first n.
type failingEmitter struct {
	ok   int
	recs []SliceRecord
	err  error
}

func (e *failingEmitter) OnSlice(r SliceRecord) error {
	if len(e.recs) >= e.ok {
		return e.err
	}
	e.recs = append(e.recs, r)
	return nil
}

// An emitter delivery failure must not panic or stop the detector: the
// error is counted, the last one is retained, and analysis continues.
func TestEmitterErrorsCounted(t *testing.T) {
	em := &failingEmitter{ok: 3, err: errEmit}
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000}, em)
	feed(d, 0, 0, 100_000, 10_000, 100, 0)
	d.Finish()
	if d.EmitErrors() != 7 {
		t.Errorf("emit errors = %d, want 7 (10 slices, 3 delivered)", d.EmitErrors())
	}
	if d.LastEmitError() != errEmit {
		t.Errorf("last emit error = %v", d.LastEmitError())
	}
	if len(em.recs) != 3 {
		t.Errorf("delivered = %d", len(em.recs))
	}
	if d.Analyses() != 10 {
		t.Errorf("analyses = %d; emit failures must not stop analysis", d.Analyses())
	}
}

var errEmit = errors.New("link down")

// tracedCollector is a sliceCollector that also implements TraceSource and
// vm.ClockBinder, modeling the transport conn surface.
type tracedCollector struct {
	sliceCollector
	next  uint64
	clock vm.Clock
}

func (c *tracedCollector) NextTrace() uint64     { return c.next }
func (c *tracedCollector) BindClock(cl vm.Clock) { c.clock = cl }

type stubClock struct{ now int64 }

func (s *stubClock) Now() int64        { return s.now }
func (s *stubClock) AdvanceTo(t int64) { s.now = t }

// TestEmitSpanTagsLineage pins the detector's side of the lineage contract:
// when the emitter is a TraceSource, every closed slice records an emit
// span under the trace of the frame its records will leave in — and a zero
// NextTrace (unsampled frame) records nothing.
func TestEmitSpanTagsLineage(t *testing.T) {
	o := obs.New()
	lin := o.EnableLineage(obs.LineageConfig{SampleEvery: 1})
	em := &tracedCollector{next: 0x77}
	d := New(3, mkSensors(), Config{SliceNs: 1000, Obs: o}, em)
	feed(d, 0, 0, 100, 50, 30, 0)
	d.Finish()
	spans, _ := lin.Snapshot(nil, 0)
	emits := 0
	for _, sp := range spans {
		if sp.Stage != obs.StageEmit {
			t.Fatalf("detector recorded non-emit span %+v", sp)
		}
		if sp.Trace != 0x77 || sp.Rank != 3 || sp.Arg <= 0 {
			t.Fatalf("emit span %+v, want trace 0x77 rank 3 positive count", sp)
		}
		emits++
	}
	if emits == 0 || emits != len(em.recs) {
		t.Fatalf("emit spans = %d, slices emitted = %d", emits, len(em.recs))
	}

	// Unsampled frames (NextTrace 0) must add nothing.
	em2 := &tracedCollector{next: 0}
	d2 := New(4, mkSensors(), Config{SliceNs: 1000, Obs: o}, em2)
	feed(d2, 0, 0, 100, 50, 30, 0)
	d2.Finish()
	after, _ := lin.Snapshot(nil, 0)
	if len(after) != len(spans) {
		t.Fatalf("unsampled emits added %d spans", len(after)-len(spans))
	}
}

// TestBindClockForwards pins that the detector forwards the rank clock to
// a clock-binding emitter and leaves plain emitters alone.
func TestBindClockForwards(t *testing.T) {
	em := &tracedCollector{}
	d := New(0, mkSensors(), Config{}, em)
	cl := &stubClock{}
	d.BindClock(cl)
	if em.clock != vm.Clock(cl) {
		t.Fatal("clock not forwarded to the binding emitter")
	}
	d2 := New(0, mkSensors(), Config{}, &sliceCollector{})
	d2.BindClock(cl) // must not panic on a non-binding emitter
}
