package detect

// Workload-anomaly discrimination. A v-sensor's workload is fixed by
// construction, so its PMU instruction count must stay constant even when
// its execution time varies — that is what lets vSensor blame the system.
// If the *instruction count itself* drifts, something else is wrong: the
// snippet was mis-identified (a soundness escape), the program has
// data-dependent behaviour the static rules missed, or the user described
// an extern incorrectly. Separating the two cases keeps time-variance
// reports trustworthy (paper §5.3 notes more PMU metrics can be folded in;
// §6.2 uses instruction counts for validation — this does the same check
// on-line).

// AnomalyKind classifies a slice-level deviation.
type AnomalyKind int

// Anomaly kinds.
const (
	// SystemVariance: time changed, workload constant — the machine's
	// fault (the paper's performance variance).
	SystemVariance AnomalyKind = iota
	// WorkloadAnomaly: the measured instruction count drifted beyond
	// measurement error — the sensor is not actually fixed-workload.
	WorkloadAnomaly
)

// String names the anomaly kind.
func (k AnomalyKind) String() string {
	if k == WorkloadAnomaly {
		return "workload-anomaly"
	}
	return "system-variance"
}

// Anomaly is a classified deviation for one sensor slice.
type Anomaly struct {
	Kind    AnomalyKind
	Sensor  int
	Group   int
	SliceNs int64
	// Perf is the normalized time performance (system variance).
	Perf float64
	// InstrRatio is AvgInstr relative to the sensor's baseline
	// (workload anomaly when outside the tolerance band).
	InstrRatio float64
}

// AnomalyConfig tunes the discrimination.
type AnomalyConfig struct {
	// PerfThreshold flags system variance below this normalized
	// performance (default 0.8).
	PerfThreshold float64
	// InstrTolerance is the acceptable relative deviation of the
	// instruction count from baseline, covering PMU measurement error
	// (default 0.02 = ±2%).
	InstrTolerance float64
}

func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.PerfThreshold == 0 {
		c.PerfThreshold = DefaultVarianceThreshold
	}
	if c.InstrTolerance == 0 {
		c.InstrTolerance = 0.02
	}
	return c
}

// AnomalyDetector consumes slice records and classifies deviations. It
// implements Emitter and chains behind a Detector via Fanout. One per rank;
// not safe for concurrent use.
type AnomalyDetector struct {
	cfg AnomalyConfig

	// Per (sensor, group): fastest time and baseline instruction count.
	bestNs    map[groupKey]float64
	baseInstr map[groupKey]float64

	anomalies []Anomaly
}

// NewAnomalyDetector builds a detector.
func NewAnomalyDetector(cfg AnomalyConfig) *AnomalyDetector {
	return &AnomalyDetector{
		cfg:       cfg.withDefaults(),
		bestNs:    make(map[groupKey]float64),
		baseInstr: make(map[groupKey]float64),
	}
}

// OnSlice classifies one smoothed record. It never fails; the error return
// satisfies the Emitter contract.
func (a *AnomalyDetector) OnSlice(r SliceRecord) error {
	if r.AvgNs <= 0 {
		return nil
	}
	k := groupKey{sensor: r.Sensor, group: r.Group}

	// Workload check first: a drifted instruction count invalidates the
	// time comparison entirely.
	if r.AvgInstr > 0 {
		base, seen := a.baseInstr[k]
		if !seen {
			a.baseInstr[k] = r.AvgInstr
		} else {
			ratio := r.AvgInstr / base
			if ratio > 1+a.cfg.InstrTolerance || ratio < 1-a.cfg.InstrTolerance {
				a.anomalies = append(a.anomalies, Anomaly{
					Kind: WorkloadAnomaly, Sensor: r.Sensor, Group: r.Group,
					SliceNs: r.SliceNs, InstrRatio: ratio,
				})
				return nil
			}
		}
	}

	best, seen := a.bestNs[k]
	if !seen || r.AvgNs < best {
		a.bestNs[k] = r.AvgNs
		best = a.bestNs[k]
	}
	perf := best / r.AvgNs
	if perf < a.cfg.PerfThreshold {
		a.anomalies = append(a.anomalies, Anomaly{
			Kind: SystemVariance, Sensor: r.Sensor, Group: r.Group,
			SliceNs: r.SliceNs, Perf: perf, InstrRatio: 1,
		})
	}
	return nil
}

// Anomalies returns the classified deviations in arrival order.
func (a *AnomalyDetector) Anomalies() []Anomaly { return a.anomalies }
