package detect

import (
	"testing"

	"vsensor/internal/vm"
)

func TestAnomalySystemVariance(t *testing.T) {
	a := NewAnomalyDetector(AnomalyConfig{})
	// Constant workload (1000 instr), time degrades in the second half.
	for i := int64(0); i < 10; i++ {
		avg := 100.0
		if i >= 5 {
			avg = 200
		}
		a.OnSlice(SliceRecord{Sensor: 0, SliceNs: i * 1_000_000, Count: 10, AvgNs: avg, AvgInstr: 1000})
	}
	got := a.Anomalies()
	if len(got) != 5 {
		t.Fatalf("anomalies = %+v", got)
	}
	for _, x := range got {
		if x.Kind != SystemVariance {
			t.Errorf("kind = %v", x.Kind)
		}
		if x.Perf > 0.51 || x.Perf < 0.49 {
			t.Errorf("perf = %v", x.Perf)
		}
	}
}

func TestAnomalyWorkloadDrift(t *testing.T) {
	a := NewAnomalyDetector(AnomalyConfig{})
	// Time degrades BECAUSE the instruction count grew: workload anomaly,
	// not system variance.
	a.OnSlice(SliceRecord{Sensor: 0, SliceNs: 0, Count: 10, AvgNs: 100, AvgInstr: 1000})
	a.OnSlice(SliceRecord{Sensor: 0, SliceNs: 1_000_000, Count: 10, AvgNs: 200, AvgInstr: 2000})
	got := a.Anomalies()
	if len(got) != 1 || got[0].Kind != WorkloadAnomaly {
		t.Fatalf("anomalies = %+v", got)
	}
	if got[0].InstrRatio != 2.0 {
		t.Errorf("instr ratio = %v", got[0].InstrRatio)
	}
}

func TestAnomalyToleratesPMUJitter(t *testing.T) {
	a := NewAnomalyDetector(AnomalyConfig{InstrTolerance: 0.02})
	a.OnSlice(SliceRecord{Sensor: 0, SliceNs: 0, Count: 10, AvgNs: 100, AvgInstr: 1000})
	a.OnSlice(SliceRecord{Sensor: 0, SliceNs: 1_000_000, Count: 10, AvgNs: 101, AvgInstr: 1015}) // 1.5% drift
	if got := a.Anomalies(); len(got) != 0 {
		t.Errorf("jitter-level drift flagged: %+v", got)
	}
}

func TestAnomalyPerGroupBaselines(t *testing.T) {
	// Two dynamic-rule groups with different instruction counts are each
	// compared against their own baseline.
	a := NewAnomalyDetector(AnomalyConfig{})
	for i := int64(0); i < 6; i++ {
		a.OnSlice(SliceRecord{Sensor: 0, Group: 0, SliceNs: i * 1_000_000, Count: 1, AvgNs: 100, AvgInstr: 1000})
		a.OnSlice(SliceRecord{Sensor: 0, Group: 1, SliceNs: i * 1_000_000, Count: 1, AvgNs: 300, AvgInstr: 3000})
	}
	if got := a.Anomalies(); len(got) != 0 {
		t.Errorf("per-group baselines violated: %+v", got)
	}
}

func TestAnomalyKindString(t *testing.T) {
	if SystemVariance.String() != "system-variance" || WorkloadAnomaly.String() != "workload-anomaly" {
		t.Error("kind names wrong")
	}
}

// Integration with the Detector via Fanout.
func TestAnomalyBehindDetector(t *testing.T) {
	an := NewAnomalyDetector(AnomalyConfig{})
	d := New(0, mkSensors(), Config{SliceNs: 1_000_000}, Fanout{an})
	// Degrading times, constant instr.
	for i := 0; i < 400; i++ {
		s := int64(i) * 50_000
		dur := int64(20_000)
		if i >= 200 {
			dur = 40_000
		}
		d.OnRecord(vm.Record{Sensor: 0, Start: s, End: s + dur, Instr: 500})
	}
	d.Finish()
	sys, wl := 0, 0
	for _, x := range an.Anomalies() {
		switch x.Kind {
		case SystemVariance:
			sys++
		case WorkloadAnomaly:
			wl++
		}
	}
	if sys == 0 || wl != 0 {
		t.Errorf("sys=%d wl=%d", sys, wl)
	}
}
