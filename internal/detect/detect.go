// Package detect implements vSensor's on-line runtime analysis (paper §5):
// time-slice data smoothing, performance normalization against the fastest
// record, history comparison with O(1) state per sensor, dynamic-rule
// grouping (e.g. cache-miss-rate buckets), runtime disabling of too-short
// sensors, and per-process variance detection.
package detect

import (
	"sort"
	"strconv"
	"time"

	"vsensor/internal/ir"
	"vsensor/internal/obs"
	"vsensor/internal/vm"
)

// nowUnixNs is the wall-clock source for lineage spans; only called when a
// record is about to leave in a sampled frame, so the common path never
// reads the clock.
func nowUnixNs() int64 { return time.Now().UnixNano() }

// Sensor is the static metadata the detector needs per instrumented sensor.
type Sensor struct {
	ID           int
	Type         ir.SnippetType
	ProcessFixed bool
	Name         string
}

// Config controls the on-line analysis.
type Config struct {
	// SliceNs is the smoothing time slice (paper §5.1; default 1000µs).
	// Records are aggregated and averaged per slice, filtering the
	// high-frequency OS background noise.
	SliceNs int64

	// VarianceThreshold flags a slice as variance when its normalized
	// performance drops below this (default 0.8).
	VarianceThreshold float64

	// MissRateBuckets enables the dynamic-rule grouping of §5.3/Fig. 13:
	// records are clustered by cache-miss-rate range before comparison.
	// Each value is an upper bound; e.g. {0.1, 0.2, 1.01} buckets records
	// into [0,0.1), [0.1,0.2), [0.2,1.01). Nil disables grouping.
	MissRateBuckets []float64

	// DisableShortNs turns off analysis for sensors whose observed mean
	// duration is below this after a warm-up (paper §5.3: "vSensor will
	// turn off the analysis for v-sensors that are too short at runtime").
	// Zero disables the rule.
	DisableShortNs int64

	// WarmupRecords is the number of records used to estimate a sensor's
	// duration before the short-sensor rule fires (default 32).
	WarmupRecords int

	// Obs attaches detector metrics (detect_records_total,
	// detect_slices_total{rank=...}, detect_variance_events_total,
	// detect_dropped_total). Nil disables them.
	Obs *obs.Obs
}

// Defaults.
const (
	DefaultSliceNs           = 1_000_000 // 1000 µs
	DefaultVarianceThreshold = 0.8
	DefaultWarmup            = 32
)

func (c Config) withDefaults() Config {
	if c.SliceNs <= 0 {
		c.SliceNs = DefaultSliceNs
	}
	if c.VarianceThreshold == 0 {
		c.VarianceThreshold = DefaultVarianceThreshold
	}
	if c.WarmupRecords == 0 {
		c.WarmupRecords = DefaultWarmup
	}
	return c
}

// SliceRecord is one smoothed data point: the average execution time of one
// sensor (within one dynamic-rule group) during one time slice on one rank.
// This is the unit shipped to the analysis server.
type SliceRecord struct {
	Sensor   int
	Group    int
	Rank     int
	SliceNs  int64 // slice start, virtual ns
	Count    int32
	AvgNs    float64
	AvgInstr float64
}

// Emitter consumes completed slice records (e.g. the analysis-server
// client). Calls arrive on the rank's own goroutine. A non-nil error means
// the record could not be delivered; the detector counts it
// (detect_emit_errors_total) and keeps analyzing — delivery failures must
// degrade coverage, not crash the rank.
type Emitter interface {
	OnSlice(SliceRecord) error
}

// TraceSource is implemented by emitters that participate in record-lineage
// tracing (e.g. transport.Conn, server.Client): NextTrace reports the
// lineage trace ID of the frame the next emitted record will travel in,
// or 0 when that frame is unsampled or lineage is off. The detector uses it
// to stamp an "emit" span at the moment a smoothed record leaves the rank.
type TraceSource interface {
	NextTrace() uint64
}

// VarianceEvent is a locally detected performance variance: a slice whose
// normalized performance fell below the threshold.
type VarianceEvent struct {
	Sensor  int
	Group   int
	Type    ir.SnippetType
	SliceNs int64
	Perf    float64 // normalized performance (1.0 = best observed)
}

// Detector is the per-rank on-line analyzer. It implements vm.Sink.
// Not safe for concurrent use: each rank owns one Detector.
type Detector struct {
	rank    int
	cfg     Config
	sensors map[int]*Sensor

	state map[groupKey]*groupState

	// short-sensor bookkeeping
	obs      map[int]*shortObs
	disabled map[int]bool

	emitter  Emitter
	traceSrc TraceSource  // emitter's lineage view, nil when not participating
	lin      *obs.Lineage // record-lineage tracer (nil = lineage off)
	events   []VarianceEvent

	analyses int64 // number of slice analyses triggered (overhead metric)
	dropped  int64 // records skipped due to disabled sensors

	emitErrs    int64 // slice records the emitter failed to deliver
	lastEmitErr error

	// Per-rank counter handles (nil-safe no-ops when Config.Obs is nil).
	// The slices/records counters carry a rank label so concurrent ranks
	// increment distinct atomics instead of contending on one cache line.
	obsRecords  *obs.Counter
	obsSlices   *obs.Counter
	obsEvents   *obs.Counter
	obsDropped  *obs.Counter
	obsEmitErrs *obs.Counter
}

type groupKey struct {
	sensor int
	group  int
}

type groupState struct {
	sliceStart int64
	count      int32
	sumNs      float64
	sumInstr   float64

	// bestAvg is the fastest slice average seen so far: the "standard
	// time" scalar of §5.3 — the only history kept per sensor/group.
	bestAvg float64
	started bool
}

type shortObs struct {
	n     int
	sumNs int64
}

// New builds a per-rank detector over the given sensors.
func New(rank int, sensors []Sensor, cfg Config, emitter Emitter) *Detector {
	d := &Detector{
		rank:     rank,
		cfg:      cfg.withDefaults(),
		sensors:  make(map[int]*Sensor, len(sensors)),
		state:    make(map[groupKey]*groupState),
		obs:      make(map[int]*shortObs),
		disabled: make(map[int]bool),
		emitter:  emitter,
	}
	for i := range sensors {
		s := sensors[i]
		d.sensors[s.ID] = &s
	}
	if o := d.cfg.Obs; o != nil {
		rankLabel := strconv.Itoa(rank)
		d.obsRecords = o.Counter("detect_records_total", "rank", rankLabel)
		d.obsSlices = o.Counter("detect_slices_total", "rank", rankLabel)
		d.obsEvents = o.Counter("detect_variance_events_total")
		d.obsDropped = o.Counter("detect_dropped_total")
		d.obsEmitErrs = o.Counter("detect_emit_errors_total")
		if d.lin = o.Lineage(); d.lin != nil {
			if ts, ok := emitter.(TraceSource); ok {
				d.traceSrc = ts
			}
		}
	}
	return d
}

// BindClock forwards the rank's virtual clock down the emitter chain (the
// VM calls this once per rank before execution), so an emitter that models
// a real link — internal/transport — can charge retry and backoff delays
// to the rank it serves. Emitters that don't need a clock are unaffected.
func (d *Detector) BindClock(c vm.Clock) {
	if b, ok := d.emitter.(vm.ClockBinder); ok {
		b.BindClock(c)
	}
}

// OnRecord consumes one raw sensor measurement (vm.Sink).
func (d *Detector) OnRecord(r vm.Record) {
	if d.disabled[r.Sensor] {
		d.dropped++
		d.obsDropped.Inc()
		return
	}
	d.obsRecords.Inc()
	dur := r.End - r.Start

	// Short-sensor rule: estimate duration during warm-up, then disable.
	if d.cfg.DisableShortNs > 0 {
		o := d.obs[r.Sensor]
		if o == nil {
			o = &shortObs{}
			d.obs[r.Sensor] = o
		}
		if o.n < d.cfg.WarmupRecords {
			o.n++
			o.sumNs += dur
			if o.n == d.cfg.WarmupRecords && o.sumNs/int64(o.n) < d.cfg.DisableShortNs {
				d.disabled[r.Sensor] = true
				d.closeGroupsOf(r.Sensor)
				return
			}
		}
	}

	key := groupKey{sensor: r.Sensor, group: d.groupOf(r.MissRate)}
	st := d.state[key]
	if st == nil {
		st = &groupState{}
		d.state[key] = st
	}
	sliceStart := r.Start - r.Start%d.cfg.SliceNs
	if st.started && sliceStart != st.sliceStart {
		d.closeSlice(key, st)
	}
	if !st.started || st.count == 0 {
		st.sliceStart = sliceStart
		st.started = true
	}
	st.count++
	st.sumNs += float64(dur)
	st.sumInstr += float64(r.Instr)
}

// groupOf buckets a miss rate per the dynamic rules.
func (d *Detector) groupOf(miss float64) int {
	if len(d.cfg.MissRateBuckets) == 0 {
		return 0
	}
	for i, hi := range d.cfg.MissRateBuckets {
		if miss < hi {
			return i
		}
	}
	return len(d.cfg.MissRateBuckets)
}

// closeSlice finalizes the open slice for a group: emits the smoothed
// record, updates the standard time, and triggers the variance check —
// the analysis runs once per slice, not per record (paper §5.1).
func (d *Detector) closeSlice(key groupKey, st *groupState) {
	if st.count == 0 {
		return
	}
	avg := st.sumNs / float64(st.count)
	rec := SliceRecord{
		Sensor:   key.sensor,
		Group:    key.group,
		Rank:     d.rank,
		SliceNs:  st.sliceStart,
		Count:    st.count,
		AvgNs:    avg,
		AvgInstr: st.sumInstr / float64(st.count),
	}
	d.analyses++
	d.obsSlices.Inc()

	if st.bestAvg == 0 || avg < st.bestAvg {
		st.bestAvg = avg
	}
	perf := st.bestAvg / avg // 1.0 = as fast as the best observed
	if perf < d.cfg.VarianceThreshold {
		typ := ir.Computation
		if s := d.sensors[key.sensor]; s != nil {
			typ = s.Type
		}
		d.events = append(d.events, VarianceEvent{
			Sensor:  key.sensor,
			Group:   key.group,
			Type:    typ,
			SliceNs: st.sliceStart,
			Perf:    perf,
		})
		d.obsEvents.Inc()
	}
	if d.emitter != nil {
		if d.traceSrc != nil {
			// Stamp the emit hop with the trace of the frame this record
			// will leave in — the first span of a sampled record's journey.
			if trace := d.traceSrc.NextTrace(); trace != 0 {
				d.lin.Record(trace, obs.StageEmit, d.rank, 0, nowUnixNs(), 0, int64(rec.Count))
			}
		}
		if err := d.emitter.OnSlice(rec); err != nil {
			d.emitErrs++
			d.lastEmitErr = err
			d.obsEmitErrs.Inc()
		}
	}
	st.count = 0
	st.sumNs = 0
	st.sumInstr = 0
}

func (d *Detector) closeGroupsOf(sensor int) {
	for key, st := range d.state {
		if key.sensor == sensor {
			d.closeSlice(key, st)
			delete(d.state, key)
		}
	}
}

// Finish flushes every open slice; call once after the run completes.
func (d *Detector) Finish() {
	keys := make([]groupKey, 0, len(d.state))
	for k := range d.state {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sensor != keys[j].sensor {
			return keys[i].sensor < keys[j].sensor
		}
		return keys[i].group < keys[j].group
	})
	for _, k := range keys {
		d.closeSlice(k, d.state[k])
	}
}

// Events returns the locally detected variance events.
func (d *Detector) Events() []VarianceEvent { return d.events }

// Analyses returns how many slice analyses ran (the per-slice trigger that
// bounds on-line overhead).
func (d *Detector) Analyses() int64 { return d.analyses }

// Dropped returns how many records were skipped for disabled sensors.
func (d *Detector) Dropped() int64 { return d.dropped }

// EmitErrors returns how many slice records the emitter failed to deliver.
func (d *Detector) EmitErrors() int64 { return d.emitErrs }

// LastEmitError returns the most recent emitter delivery error, nil if none.
func (d *Detector) LastEmitError() error { return d.lastEmitErr }

// Disabled reports whether the short-sensor rule turned a sensor off.
func (d *Detector) Disabled(sensor int) bool { return d.disabled[sensor] }
