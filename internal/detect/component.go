package detect

import (
	"sort"

	"vsensor/internal/ir"
)

// ComponentTracker implements the per-type data merging of paper §5.2:
// "different v-sensors of the same type represent the performance of the
// same system component, so their performance data can be merged to improve
// detection accuracy" — ten network sensors each firing once per 1000µs
// let the merged stream judge network performance every 100µs.
//
// The tracker consumes normalized per-sensor slice performances and
// re-aggregates them into finer component sub-slices. One tracker serves
// one rank; it is not safe for concurrent use.
type ComponentTracker struct {
	subSliceNs int64
	threshold  float64

	sensors map[int]*Sensor
	// best per sensor (standard time, §5.3) for normalization.
	best map[int]float64

	agg    map[compKey]*compAgg
	events []ComponentEvent
}

type compKey struct {
	typ ir.SnippetType
	sub int64
}

type compAgg struct {
	sum float64
	n   int
}

// ComponentEvent is a merged-stream variance detection: a component whose
// aggregate normalized performance dropped below threshold in a sub-slice.
type ComponentEvent struct {
	Type    ir.SnippetType
	SliceNs int64
	Perf    float64
	Samples int
}

// NewComponentTracker builds a tracker at the given sub-slice resolution
// (e.g. 100µs against the detector's 1000µs slices) and threshold.
func NewComponentTracker(sensors []Sensor, subSliceNs int64, threshold float64) *ComponentTracker {
	if subSliceNs <= 0 {
		subSliceNs = DefaultSliceNs / 10
	}
	if threshold == 0 {
		threshold = DefaultVarianceThreshold
	}
	t := &ComponentTracker{
		subSliceNs: subSliceNs,
		threshold:  threshold,
		sensors:    make(map[int]*Sensor, len(sensors)),
		best:       make(map[int]float64),
		agg:        make(map[compKey]*compAgg),
	}
	for i := range sensors {
		s := sensors[i]
		t.sensors[s.ID] = &s
	}
	return t
}

// OnSlice merges one smoothed sensor record into its component stream.
// It can be chained after a Detector by a fan-out Emitter. It never fails;
// the error return satisfies the Emitter contract.
func (t *ComponentTracker) OnSlice(r SliceRecord) error {
	s := t.sensors[r.Sensor]
	if s == nil || r.AvgNs <= 0 {
		return nil
	}
	if b, ok := t.best[r.Sensor]; !ok || r.AvgNs < b {
		t.best[r.Sensor] = r.AvgNs
	}
	perf := t.best[r.Sensor] / r.AvgNs
	key := compKey{typ: s.Type, sub: r.SliceNs - r.SliceNs%t.subSliceNs}
	a := t.agg[key]
	if a == nil {
		a = &compAgg{}
		t.agg[key] = a
	}
	a.sum += perf
	a.n++
	return nil
}

// Finish evaluates all merged sub-slices and returns the component events,
// ordered by time then component.
func (t *ComponentTracker) Finish() []ComponentEvent {
	keys := make([]compKey, 0, len(t.agg))
	for k := range t.agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sub != keys[j].sub {
			return keys[i].sub < keys[j].sub
		}
		return keys[i].typ < keys[j].typ
	})
	t.events = t.events[:0]
	for _, k := range keys {
		a := t.agg[k]
		perf := a.sum / float64(a.n)
		if perf < t.threshold {
			t.events = append(t.events, ComponentEvent{
				Type: k.typ, SliceNs: k.sub, Perf: perf, Samples: a.n,
			})
		}
	}
	return t.events
}

// Fanout duplicates slice records to several emitters (e.g. the analysis-
// server client plus a ComponentTracker).
type Fanout []Emitter

// OnSlice forwards to every emitter. Every emitter sees the record even
// when an earlier one fails; the first error is returned.
func (f Fanout) OnSlice(r SliceRecord) error {
	var first error
	for _, e := range f {
		if err := e.OnSlice(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}
