package apps

import (
	"strings"
	"testing"

	"vsensor/internal/analysis"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
)

func TestAllAppsParseAndAnalyze(t *testing.T) {
	for _, app := range All(TestScale) {
		t.Run(app.Name, func(t *testing.T) {
			prog, err := ir.Build(minic.MustParse(app.Source))
			if err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
			if errs := ir.Check(prog); len(errs) != 0 {
				t.Fatalf("%s: semantic diagnostics: %v", app.Name, errs)
			}
			res := analysis.Analyze(prog)
			if len(res.Snippets) == 0 {
				t.Fatal("no snippets found")
			}
			if len(res.GlobalSensors) == 0 {
				t.Fatal("no global sensors identified")
			}
			ins := instrument.Apply(res, instrument.Config{})
			if len(ins.Sensors) == 0 {
				t.Fatal("no sensors instrumented")
			}
			t.Logf("%s: LoC=%d snippets=%d sensors=%d global=%d instrumented=%s",
				app.Name, app.LoC(), len(res.Snippets), len(res.Sensors),
				len(res.GlobalSensors), ins.TypeSummary())
		})
	}
}

func instrumented(t *testing.T, name string) *instrument.Instrumented {
	t.Helper()
	app := MustGet(name, TestScale)
	prog, err := ir.Build(minic.MustParse(app.Source))
	if err != nil {
		t.Fatal(err)
	}
	return instrument.Apply(analysis.Analyze(prog), instrument.Config{})
}

func typeCounts(ins *instrument.Instrumented) map[ir.SnippetType]int {
	return ins.CountByType()
}

// BT and LU use iteration-dependent message sizes: no network sensor must
// survive, matching their Table 1 rows (computation sensors only).
func TestBTAndLUHaveNoNetworkSensors(t *testing.T) {
	for _, name := range []string{"BT", "LU"} {
		counts := typeCounts(instrumented(t, name))
		if counts[ir.Network] != 0 {
			t.Errorf("%s: network sensors = %d, want 0", name, counts[ir.Network])
		}
		if counts[ir.Computation] == 0 {
			t.Errorf("%s: no computation sensors", name)
		}
	}
}

// CG, FT, SP, LULESH, AMG and RAXML all keep at least one network sensor.
func TestNetworkSensorsPresent(t *testing.T) {
	for _, name := range []string{"CG", "FT", "SP", "LULESH", "AMG", "RAXML"} {
		counts := typeCounts(instrumented(t, name))
		if counts[ir.Network] == 0 {
			t.Errorf("%s: expected network sensors, got %v", name, counts)
		}
	}
}

// RAXML instruments the most sensors of the eight (277Comp+24Net in the
// paper); AMG's adaptive solve leaves the fewest relative to its size.
func TestSensorCountOrdering(t *testing.T) {
	counts := make(map[string]int)
	for _, name := range Names() {
		counts[name] = len(instrumented(t, name).Sensors)
	}
	if counts["RAXML"] < counts["AMG"] {
		t.Errorf("RAXML (%d) should instrument more sensors than AMG (%d)", counts["RAXML"], counts["AMG"])
	}
}

// AMG's smooth/restrict loops depend on the shrinking level size and must
// not be sensors; its setup phase provides the only sensors.
func TestAMGAdaptiveLoopsNotSensors(t *testing.T) {
	app := MustGet("AMG", TestScale)
	prog, err := ir.Build(minic.MustParse(app.Source))
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog)
	for _, s := range res.GlobalSensors {
		if s.Func.Name == "smooth" || s.Func.Name == "restrict_residual" {
			t.Errorf("adaptive %s snippet wrongly global: %s deps=%s", s.Func.Name, s.ID(), s.Deps)
		}
	}
	// The smooth() call inside the V-cycle while loop must not be a sensor
	// of that loop.
	for _, s := range res.Funcs["main"].Snippets {
		if s.Call != nil && s.Call.Callee == "smooth" && len(s.SensorOf) > 0 {
			t.Errorf("smooth(n) call should not be a sensor: %s", s.Deps)
		}
	}
}

// LULESH's hourglass_adaptive call depends on the adaptive region count.
func TestLULESHAdaptiveSnippetNotSensor(t *testing.T) {
	app := MustGet("LULESH", TestScale)
	prog, err := ir.Build(minic.MustParse(app.Source))
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog)
	for _, s := range res.Funcs["main"].Snippets {
		if s.Call != nil && s.Call.Callee == "hourglass_adaptive" {
			if len(s.SensorOf) > 0 || s.Global {
				t.Errorf("hourglass_adaptive must not be a sensor: deps=%s", s.Deps)
			}
			return
		}
	}
	t.Fatal("hourglass_adaptive call not found")
}

// BTIO is the extra NPB variant: it carries an IO sensor and stays out of
// the paper's eight-app table.
func TestBTIOExtra(t *testing.T) {
	for _, n := range Names() {
		if n == "BTIO" {
			t.Error("BTIO must not be in the paper's app set")
		}
	}
	foundExtra := false
	for _, n := range AllNames() {
		if n == "BTIO" {
			foundExtra = true
		}
	}
	if !foundExtra {
		t.Fatal("BTIO missing from AllNames")
	}
	counts := typeCounts(instrumented(t, "BTIO"))
	if counts[ir.IO] == 0 {
		t.Errorf("BTIO should have an IO sensor: %v", counts)
	}
	if counts[ir.Computation] == 0 {
		t.Errorf("BTIO should keep computation sensors: %v", counts)
	}
}

func TestScaleChangesSource(t *testing.T) {
	a := MustGet("CG", Scale{Iters: 5, Work: 10})
	b := MustGet("CG", Scale{Iters: 50, Work: 10})
	if a.Source == b.Source {
		t.Error("scale did not affect source")
	}
	if !strings.Contains(a.Source, "NITER = 5;") {
		t.Error("iters not substituted")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("NOPE", TestScale); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	a := MustGet("FT", Scale{})
	if !strings.Contains(a.Source, "NITER = 60;") {
		t.Error("default iters not applied")
	}
	if a.DefaultRanks <= 0 || a.LoC() < 20 {
		t.Errorf("app metadata: ranks=%d loc=%d", a.DefaultRanks, a.LoC())
	}
}
