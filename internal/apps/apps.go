// Package apps provides miniature versions of the paper's eight evaluation
// programs — BT, CG, FT, LU, SP from the NAS Parallel Benchmarks plus
// LULESH, AMG and RAxML — written in mini-C for the vSensor pipeline
// (paper §6.1). The minis are orders of magnitude smaller than the real
// codes but mirror the structural properties Table 1 and Figs. 16-17
// depend on: which snippets have fixed workloads, where communication
// sits, how sensors distribute over the run. In particular AMG's adaptive
// mesh refinement leaves almost no fixed-workload snippets (lowest
// coverage/frequency in Table 1), and LULESH has one large non-fixed
// snippet in its main loop that creates long sense intervals (Fig. 17).
package apps

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Scale tunes an app's iteration count and per-iteration work so the same
// source runs from unit-test size to benchmark size.
type Scale struct {
	Iters int // outer (time-step) iterations
	Work  int // per-iteration work multiplier
}

// DefaultScale is the standard benchmark sizing.
var DefaultScale = Scale{Iters: 60, Work: 100}

// TestScale is a fast sizing for unit tests.
var TestScale = Scale{Iters: 8, Work: 10}

// App is one workload.
type App struct {
	Name   string
	Source string
	// DefaultRanks is the rank count used by the paper-style experiments.
	DefaultRanks int
}

// LoC returns the app's source line count (Table 1's "Code" column analog).
func (a *App) LoC() int {
	return len(strings.Split(strings.TrimSpace(a.Source), "\n"))
}

type builder func(Scale) string

var registry = map[string]struct {
	build builder
	ranks int
	extra bool // not part of the paper's eight-program evaluation set
}{
	"BT":     {buildBT, 64, false},
	"CG":     {buildCG, 128, false},
	"FT":     {buildFT, 64, false},
	"LU":     {buildLU, 64, false},
	"SP":     {buildSP, 64, false},
	"LULESH": {buildLULESH, 64, false},
	"AMG":    {buildAMG, 64, false},
	"RAXML":  {buildRAXML, 48, false},
	// BTIO is the NPB BT-IO variant: BT plus periodic checkpointing. It is
	// not in the paper's Table 1 but exercises the IO sensor component.
	"BTIO": {buildBTIO, 64, true},
}

// Names lists the paper's eight evaluation apps in a fixed order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n, e := range registry {
		if !e.extra {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// AllNames lists every registered app, including extras such as BTIO.
func AllNames() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get builds the named app at the given scale.
func Get(name string, s Scale) (*App, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown app %q (have %v)", name, Names())
	}
	if s.Iters <= 0 {
		s.Iters = DefaultScale.Iters
	}
	if s.Work <= 0 {
		s.Work = DefaultScale.Work
	}
	return &App{Name: name, Source: e.build(s), DefaultRanks: e.ranks}, nil
}

// MustGet is Get or panic.
func MustGet(name string, s Scale) *App {
	a, err := Get(name, s)
	if err != nil {
		panic(err)
	}
	return a
}

// All builds every app at the given scale, in Names() order.
func All(s Scale) []*App {
	var out []*App
	for _, n := range Names() {
		out = append(out, MustGet(n, s))
	}
	return out
}

// expand substitutes @NAME@ placeholders in a template; values are
// decimal integers. It panics on unknown or leftover placeholders, which
// are template bugs.
func expand(tmpl string, vals map[string]int) string {
	out := tmpl
	for k, v := range vals {
		out = strings.ReplaceAll(out, "@"+k+"@", strconv.Itoa(v))
	}
	if i := strings.Index(out, "@"); i >= 0 {
		end := i + 20
		if end > len(out) {
			end = len(out)
		}
		panic("apps: unexpanded placeholder near: " + out[i:end])
	}
	return out
}
