package apps

// buildLULESH: shock hydrodynamics time steps. The force calculation and
// position updates are fixed-workload, but the main loop contains one large
// snippet whose workload follows the adaptive time-step (computed through
// an allreduce, hence unpredictable to the compiler). That snippet creates
// the long sense intervals the paper reports for LULESH (Fig. 17) while
// enough sensors still span the run.
func buildLULESH(s Scale) string {
	return expand(`
global int NITER = @ITERS@;
global int ELEMS = @ELEMS@;

func calc_force(int elems) {
    for (int e = 0; e < elems; e++) {
        flops(150);
        mem(70);
    }
}

func position_update(int elems) {
    for (int e = 0; e < elems; e++) {
        flops(60);
        mem(40);
    }
}

func dt_reduce(float dt) float {
    return mpi_allreduce(8, dt);
}

func hourglass_adaptive(int regions) {
    // The whole region is workload-adaptive: the region count varies with
    // the time step and the per-region element work varies with the region
    // index, so no snippet inside is a v-sensor. This is the big non-fixed
    // snippet that gives LULESH its long sense intervals (paper Fig. 17).
    for (int r = 0; r < regions; r++) {
        for (int e = 0; e < 40 + r * 2; e++) {
            flops(120 + r);
            mem(60 + r);
        }
    }
}

func halo(int rank, int size) {
    int peer = rank + 1;
    if (rank % 2 == 1) {
        peer = rank - 1;
    }
    if (peer >= size) {
        peer = rank;
    }
    mpi_sendrecv(peer, 12288, 1.0);
}

func main() {
    int rank = mpi_comm_rank();
    int size = mpi_comm_size();
    float dt = 1.0;
    for (int step = 0; step < NITER; step++) {
        calc_force(ELEMS);
        halo(rank, size);
        dt = dt_reduce(dt + 0.25);
        int regions = 10;
        if (dt > 10.0) {
            regions = 10 + abs_i(step % 13);
        }
        hourglass_adaptive(regions);
        position_update(ELEMS);
    }
}
`, map[string]int{"ITERS": s.Iters, "ELEMS": s.Work})
}

// buildAMG: algebraic multigrid. After a short fixed-workload setup, the
// V-cycles walk a level hierarchy whose sizes shrink as the mesh coarsens
// and whose work adapts to the residual — leaving nearly no fixed-workload
// snippets during the long solve phase. This reproduces AMG's Table 1 row:
// by far the lowest sense coverage and frequency of the eight programs.
func buildAMG(s Scale) string {
	return expand(`
global int NCYCLES = @CYCLES@;
global int FINE = @FINE@;

func setup_matrix(int n) {
    for (int i = 0; i < n; i++) {
        flops(90);
        mem(50);
    }
}

func smooth(int n) {
    // Both the trip count and the per-row stencil work depend on the
    // level size n, which shrinks as the mesh coarsens: not a v-sensor.
    for (int i = 0; i < n; i++) {
        flops(100 + n / 4);
        mem(40 + n / 8);
    }
}

func restrict_residual(int n) {
    for (int i = 0; i < n; i++) {
        flops(50 + n / 4);
        mem(30 + n / 8);
    }
}

func coarse_solve(int n) {
    for (int sweep = 0; sweep < 6; sweep++) {
        for (int i = 0; i < n; i++) {
            flops(60 + n);
        }
    }
}

func residual_norm(float acc) float {
    return mpi_allreduce(8, acc);
}

func main() {
    int rank = mpi_comm_rank();
    // Fixed-workload setup phase: the only region with sensors.
    for (int pass = 0; pass < 4; pass++) {
        setup_matrix(FINE);
        mpi_barrier();
    }
    float res = 1000.0;
    int work = FINE;
    for (int cycle = 0; cycle < NCYCLES; cycle++) {
        int n = work;
        while (n > 8) {
            smooth(n);
            restrict_residual(n);
            n = n / 2;
        }
        coarse_solve(n);
        res = residual_norm(res) / 2.0;
        if (res < 100.0) {
            work = work - work / 8;
        }
        if (work < 32) {
            work = 32;
        }
    }
}
`, map[string]int{"CYCLES": s.Iters, "FINE": s.Work * 8})
}

// buildRAXML: maximum-likelihood phylogenetics. Many small fixed-workload
// likelihood kernels are called from the tree-search loop (the paper
// instruments 277Comp+24Net sensors — the most of any app), alongside
// occasional broadcasts of the best tree.
func buildRAXML(s Scale) string {
	return expand(`
global int GENERATIONS = @GENS@;
global int SITES = @SITES@;

func newview(int sites) {
    for (int i = 0; i < sites; i++) {
        flops(95);
        mem(30);
    }
}

func evaluate_likelihood(int sites) float {
    float lh = 0.0;
    for (int i = 0; i < sites; i++) {
        flops(75);
    }
    return lh;
}

func optimize_branch(int sites) {
    for (int round = 0; round < 4; round++) {
        for (int i = 0; i < sites; i++) {
            flops(40);
        }
    }
}

func category_rates(int n) {
    for (int c = 0; c < n; c++) {
        flops(55);
        mem(25);
    }
}

func spr_rearrange(int sites, int radius) {
    // Rearrangement radius varies with the search: not a v-sensor.
    for (int r = 0; r < radius; r++) {
        newview(sites);
        evaluate_likelihood(sites);
    }
}

func share_best(float score) float {
    return mpi_allreduce(24, score);
}

func broadcast_tree(int root) {
    mpi_bcast(root, 4096, 1.0);
}

func main() {
    int rank = mpi_comm_rank();
    float best = 0.0;
    for (int gen = 0; gen < GENERATIONS; gen++) {
        newview(SITES);
        evaluate_likelihood(SITES);
        optimize_branch(SITES);
        category_rates(64);
        int radius = 1 + abs_i(gen * 7 % 5);
        spr_rearrange(SITES, radius);
        best = share_best(best + 1.0);
        if (gen % 8 == 0) {
            broadcast_tree(0);
        }
    }
}
`, map[string]int{"GENS": s.Iters, "SITES": s.Work})
}
