package apps

// Mini versions of the five NPB programs. Each mirrors the communication
// and loop structure relevant to sensor identification, not the numerics.

// buildCG: conjugate-gradient iteration — sparse matvec (fixed rows per
// rank), two dot products per iteration (allreduce), and a neighbour halo
// exchange. Mostly computation with a few network sensors, like the
// paper's "7Comp+5Net" profile.
func buildCG(s Scale) string {
	return expand(`
global int NITER = @ITERS@;
global int ROWS = @ROWS@;

func matvec(int rows) {
    for (int r = 0; r < rows; r++) {
        flops(180);
        mem(96);
    }
}

func axpy(int n) {
    for (int i = 0; i < n; i++) {
        flops(64);
        mem(32);
    }
}

func dot_product(int n, float seed) float {
    float local = seed;
    for (int i = 0; i < n; i++) {
        flops(48);
    }
    return mpi_allreduce(8, local + 1.0);
}

func halo_exchange(int rank, int size, int bytes) {
    int peer = rank + 1;
    if (rank % 2 == 1) {
        peer = rank - 1;
    }
    if (peer >= size) {
        peer = rank;
    }
    mpi_sendrecv(peer, bytes, 1.0);
}

func main() {
    int rank = mpi_comm_rank();
    int size = mpi_comm_size();
    float rho = 1.0;
    for (int iter = 0; iter < NITER; iter++) {
        matvec(ROWS);
        halo_exchange(rank, size, 8192);
        rho = dot_product(64, rho);
        axpy(48);
        rho = dot_product(64, rho);
        mpi_barrier();
    }
}
`, map[string]int{"ITERS": s.Iters, "ROWS": s.Work * 4})
}

// buildFT: 3-D FFT time steps — local evolve and FFT butterflies plus the
// personalized all-to-all transpose that dominates communication and makes
// FT vulnerable to network degradation (paper §6.5, Fig. 22).
func buildFT(s Scale) string {
	return expand(`
global int NITER = @ITERS@;
global int PENCIL = @PENCIL@;
global int XPOSE_BYTES = @BYTES@;

func evolve(int n) {
    for (int i = 0; i < n; i++) {
        flops(120);
        mem(64);
    }
}

func fft_local(int n) {
    for (int stage = 0; stage < 10; stage++) {
        for (int i = 0; i < n; i++) {
            flops(90);
        }
    }
}

func transpose(int bytes) {
    mpi_alltoall(bytes);
}

func checksum(float acc) float {
    for (int i = 0; i < 32; i++) {
        flops(40);
    }
    return mpi_allreduce(16, acc);
}

func main() {
    float acc = 0.0;
    for (int iter = 0; iter < NITER; iter++) {
        evolve(PENCIL);
        fft_local(PENCIL);
        transpose(XPOSE_BYTES);
        fft_local(PENCIL);
        acc = checksum(acc + 1.0);
    }
}
`, map[string]int{"ITERS": s.Iters, "PENCIL": s.Work, "BYTES": 65536})
}

// buildBT: block-tridiagonal sweeps in three directions. The face
// exchanges use an iteration-dependent message size, so no network sensor
// survives identification — matching the paper's BT row, which instruments
// computation sensors only ("87Comp").
func buildBT(s Scale) string {
	return expand(`
global int NITER = @ITERS@;
global int CELLS = @CELLS@;

func compute_rhs(int cells) {
    for (int c = 0; c < cells; c++) {
        flops(220);
        mem(120);
    }
}

func solve_cells(int cells) {
    for (int c = 0; c < cells; c++) {
        for (int j = 0; j < 5; j++) {
            flops(60);
            mem(20);
        }
    }
}

func face_exchange(int rank, int size, int iter, int dir) {
    // Nonblocking exchange like the real BT; the iteration-dependent
    // payload keeps this snippet out of the sensor set.
    int peer = rank + dir;
    if (peer < 0) {
        peer = rank;
    }
    if (peer >= size) {
        peer = rank;
    }
    int bytes = 4096 + iter % 3 * 512;
    int r = mpi_irecv(peer, bytes);
    int s = mpi_isend(peer, bytes, 1.0);
    mpi_wait(r);
    mpi_wait(s);
}

func x_sweep(int cells) { solve_cells(cells); }
func y_sweep(int cells) { solve_cells(cells); }
func z_sweep(int cells) { solve_cells(cells); }

func add_update(int cells) {
    for (int c = 0; c < cells; c++) {
        flops(45);
        mem(30);
    }
}

func main() {
    int rank = mpi_comm_rank();
    int size = mpi_comm_size();
    for (int iter = 0; iter < NITER; iter++) {
        compute_rhs(CELLS);
        x_sweep(CELLS);
        face_exchange(rank, size, iter, 1);
        y_sweep(CELLS);
        face_exchange(rank, size, iter, -1);
        z_sweep(CELLS);
        add_update(CELLS);
    }
}
`, map[string]int{"ITERS": s.Iters, "CELLS": s.Work})
}

// buildBTIO: the NPB BT-IO variant — the BT solver plus a fixed-size
// checkpoint write every few time steps. The constant write size makes the
// checkpoint an IO v-sensor, exercising the third sensor component.
func buildBTIO(s Scale) string {
	return expand(`
global int NITER = @ITERS@;
global int CELLS = @CELLS@;
global int CKPT_BYTES = @BYTES@;

func compute_rhs(int cells) {
    for (int c = 0; c < cells; c++) {
        flops(220);
        mem(120);
    }
}

func solve_cells(int cells) {
    for (int c = 0; c < cells; c++) {
        for (int j = 0; j < 5; j++) {
            flops(60);
            mem(20);
        }
    }
}

func checkpoint() {
    io_write(CKPT_BYTES);
}

func main() {
    for (int iter = 0; iter < NITER; iter++) {
        compute_rhs(CELLS);
        solve_cells(CELLS);
        solve_cells(CELLS);
        solve_cells(CELLS);
        if (iter % 5 == 0) {
            checkpoint();
        }
        mpi_barrier();
    }
}
`, map[string]int{"ITERS": s.Iters, "CELLS": s.Work, "BYTES": 262144})
}

// buildSP: scalar-pentadiagonal sweeps with fixed-size collectives, giving
// both computation and network sensors ("61Comp+6Net" in the paper).
func buildSP(s Scale) string {
	return expand(`
global int NITER = @ITERS@;
global int CELLS = @CELLS@;

func compute_rhs(int cells) {
    for (int c = 0; c < cells; c++) {
        flops(160);
        mem(80);
    }
}

func txinvr(int cells) {
    for (int c = 0; c < cells; c++) {
        flops(70);
    }
}

func sweep(int cells) {
    for (int line = 0; line < 8; line++) {
        for (int c = 0; c < cells; c++) {
            flops(55);
            mem(15);
        }
    }
}

func stage_exchange(int bytes) {
    mpi_alltoall(bytes);
}

func err_norm(float acc) float {
    return mpi_allreduce(40, acc);
}

func main() {
    float acc = 0.0;
    for (int iter = 0; iter < NITER; iter++) {
        compute_rhs(CELLS);
        txinvr(CELLS);
        sweep(CELLS);
        stage_exchange(16384);
        sweep(CELLS);
        acc = err_norm(acc + 0.5);
    }
}
`, map[string]int{"ITERS": s.Iters, "CELLS": s.Work})
}

// buildLU: SSOR iteration with lower/upper triangular sweeps. The wavefront
// pipeline sends carry an iteration-dependent payload, so like BT only
// computation sensors survive ("83Comp").
func buildLU(s Scale) string {
	return expand(`
global int NITER = @ITERS@;
global int BLOCKS = @BLOCKS@;

func jacld(int blocks) {
    for (int b = 0; b < blocks; b++) {
        flops(140);
        mem(60);
    }
}

func blts(int blocks) {
    for (int b = 0; b < blocks; b++) {
        for (int k = 0; k < 4; k++) {
            flops(50);
        }
    }
}

func jacu(int blocks) {
    for (int b = 0; b < blocks; b++) {
        flops(140);
        mem(60);
    }
}

func buts(int blocks) {
    for (int b = 0; b < blocks; b++) {
        for (int k = 0; k < 4; k++) {
            flops(50);
        }
    }
}

func pipeline_send(int rank, int size, int iter) {
    int peer = rank + 1;
    if (peer >= size) {
        peer = 0;
    }
    int bytes = 2048 + iter % 5 * 128;
    if (rank % 2 == 0) {
        mpi_send(peer, bytes, 1.0);
    } else {
        mpi_recv(rank - 1, bytes);
    }
}

func rhs_update(int blocks) {
    for (int b = 0; b < blocks; b++) {
        flops(95);
        mem(40);
    }
}

func main() {
    int rank = mpi_comm_rank();
    int size = mpi_comm_size();
    for (int iter = 0; iter < NITER; iter++) {
        jacld(BLOCKS);
        blts(BLOCKS);
        pipeline_send(rank, size, iter);
        jacu(BLOCKS);
        buts(BLOCKS);
        rhs_update(BLOCKS);
    }
}
`, map[string]int{"ITERS": s.Iters, "BLOCKS": s.Work})
}
