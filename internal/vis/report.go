package vis

import (
	"fmt"
	"sort"
	"strings"

	"vsensor/internal/ir"
)

// Finding is one diagnosed variance structure with its component
// attribution — the content of the paper's final "variance report"
// (workflow step 8): the time, the processes, and the component, in a
// coarse-grain fashion, leaving repair decisions to the user.
type Finding struct {
	Component ir.SnippetType
	Kind      FindingKind
	StartNs   int64
	EndNs     int64 // 0 for persistent (whole-run) findings
	FirstRank int
	LastRank  int
	MeanPerf  float64
}

// FindingKind classifies the shape of a variance structure.
type FindingKind int

// Finding kinds.
const (
	// BadRanks: a persistent low band of ranks — suspect bad node(s).
	BadRanks FindingKind = iota
	// DegradedPeriod: a time-bounded slowdown across (most) ranks —
	// suspect a shared resource (network, filesystem).
	DegradedPeriod
	// LocalizedBlock: bounded in both time and ranks — suspect external
	// interference on specific nodes (competing job, noise).
	LocalizedBlock
)

// String names the finding kind.
func (k FindingKind) String() string {
	switch k {
	case BadRanks:
		return "persistent-slow-ranks"
	case DegradedPeriod:
		return "degraded-period"
	case LocalizedBlock:
		return "localized-block"
	}
	return "?"
}

// ReportConfig tunes the diagnosis thresholds.
type ReportConfig struct {
	// Threshold is the normalized performance below which a cell is
	// "low" (default 0.8).
	Threshold float64
	// PersistFrac is the fraction of a rank's populated columns that must
	// be low for a persistent band (default 0.7).
	PersistFrac float64
	// SpanFrac is the fraction of populated ranks that must be low for a
	// degraded period (default 0.8).
	SpanFrac float64
}

func (c ReportConfig) withDefaults() ReportConfig {
	if c.Threshold == 0 {
		c.Threshold = 0.8
	}
	if c.PersistFrac == 0 {
		c.PersistFrac = 0.7
	}
	if c.SpanFrac == 0 {
		c.SpanFrac = 0.8
	}
	return c
}

// Diagnose extracts findings from per-type matrices, most structured
// first: persistent rank bands, then whole-width degraded periods, then
// localized blocks not already covered by the former two.
func Diagnose(mats map[ir.SnippetType]*Matrix, cfg ReportConfig) []Finding {
	cfg = cfg.withDefaults()
	var out []Finding
	types := make([]ir.SnippetType, 0, len(mats))
	for t := range mats {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })

	for _, typ := range types {
		m := mats[typ]
		bandRanks := make(map[int]bool)
		for _, b := range m.LowRankBands(cfg.Threshold, cfg.PersistFrac) {
			out = append(out, Finding{
				Component: typ, Kind: BadRanks,
				FirstRank: b.First, LastRank: b.Last, MeanPerf: b.MeanPerf,
			})
			for r := b.First; r <= b.Last; r++ {
				bandRanks[r] = true
			}
		}
		winSpans := make([][2]int64, 0)
		for _, w := range m.LowTimeWindows(cfg.Threshold, cfg.SpanFrac) {
			out = append(out, Finding{
				Component: typ, Kind: DegradedPeriod,
				StartNs: w.StartNs, EndNs: w.EndNs, MeanPerf: w.MeanPerf,
			})
			winSpans = append(winSpans, [2]int64{w.StartNs, w.EndNs})
		}
		for _, blk := range m.LowBlocks(cfg.Threshold, 0.02) {
			covered := false
			if bandRanks[blk.FirstRank] && bandRanks[blk.LastRank] {
				covered = true
			}
			for _, ws := range winSpans {
				if blk.StartNs >= ws[0] && blk.EndNs <= ws[1] {
					covered = true
				}
			}
			if covered {
				continue
			}
			out = append(out, Finding{
				Component: typ, Kind: LocalizedBlock,
				StartNs: blk.StartNs, EndNs: blk.EndNs,
				FirstRank: blk.FirstRank, LastRank: blk.LastRank,
				MeanPerf: blk.MeanPerf,
			})
		}
	}
	return out
}

// RenderReport formats findings as the user-facing variance report.
// ranksPerNode, when positive, adds node attribution to rank bands.
func RenderReport(findings []Finding, ranksPerNode int) string {
	if len(findings) == 0 {
		return "no performance variance detected\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "performance variance report: %d finding(s)\n", len(findings))
	for i, f := range findings {
		fmt.Fprintf(&sb, "%2d. [%s] %s", i+1, f.Component, f.Kind)
		switch f.Kind {
		case BadRanks:
			fmt.Fprintf(&sb, ": ranks %d-%d persistently at %.0f%% of best performance",
				f.FirstRank, f.LastRank, f.MeanPerf*100)
			if ranksPerNode > 0 {
				fmt.Fprintf(&sb, " (node %d", f.FirstRank/ranksPerNode)
				if last := f.LastRank / ranksPerNode; last != f.FirstRank/ranksPerNode {
					fmt.Fprintf(&sb, "-%d", last)
				}
				sb.WriteString(")")
			}
		case DegradedPeriod:
			fmt.Fprintf(&sb, ": all ranks at %.0f%% during %.1f..%.1f ms",
				f.MeanPerf*100, float64(f.StartNs)/1e6, float64(f.EndNs)/1e6)
		case LocalizedBlock:
			fmt.Fprintf(&sb, ": ranks %d-%d at %.0f%% during %.1f..%.1f ms",
				f.FirstRank, f.LastRank, f.MeanPerf*100,
				float64(f.StartNs)/1e6, float64(f.EndNs)/1e6)
		}
		switch f.Component {
		case ir.Computation:
			if f.Kind == BadRanks {
				sb.WriteString(" -> suspect bad node hardware (CPU/memory)")
			} else {
				sb.WriteString(" -> suspect CPU contention / OS interference")
			}
		case ir.Network:
			sb.WriteString(" -> suspect network congestion or faults")
		case ir.IO:
			sb.WriteString(" -> suspect shared-filesystem interference")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
