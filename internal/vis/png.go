package vis

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// PNG renders the matrix as a heatmap image using the paper's colormap:
// deep blue is the best performance (1.0), fading towards white at half of
// best or worse (the paper's "white blocks" are variance), and light grey
// marks cells with no data. Each cell is scaled to at least cellW×cellH
// pixels so small matrices remain legible.
func (m *Matrix) PNG(w io.Writer, cellW, cellH int) error {
	if cellW <= 0 {
		cellW = 4
	}
	if cellH <= 0 {
		cellH = 4
	}
	cols := m.Cols()
	if cols == 0 || m.Ranks == 0 {
		return png.Encode(w, image.NewRGBA(image.Rect(0, 0, 1, 1)))
	}
	img := image.NewRGBA(image.Rect(0, 0, cols*cellW, m.Ranks*cellH))
	for r := 0; r < m.Ranks; r++ {
		for c := 0; c < cols; c++ {
			px := cellColor(m.Cells[r][c])
			for dy := 0; dy < cellH; dy++ {
				for dx := 0; dx < cellW; dx++ {
					img.SetRGBA(c*cellW+dx, r*cellH+dy, px)
				}
			}
		}
	}
	return png.Encode(w, img)
}

// cellColor maps normalized performance to the blue→white ramp.
// The paper's legend spans [0.5, 1.0]: performance at or below half of the
// best renders pure white.
func cellColor(v float64) color.RGBA {
	if math.IsNaN(v) {
		return color.RGBA{R: 0xdd, G: 0xdd, B: 0xdd, A: 0xff}
	}
	// t = 1 at best (deep blue), 0 at <= 0.5 of best (white).
	t := (v - 0.5) * 2
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	lerp := func(a, b float64) uint8 { return uint8(a + (b-a)*t) }
	// white (255,255,255) → deep blue (8, 48, 140)
	return color.RGBA{
		R: lerp(255, 8),
		G: lerp(255, 48),
		B: lerp(255, 140),
		A: 0xff,
	}
}
