package vis

import (
	"math"
	"strings"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/ir"
)

// synth builds slice records for a matrix: perf maps (rank, col) to an
// average duration; base is the fastest duration.
func synth(ranks, cols int, colNs int64, dur func(rank, col int) float64) []detect.SliceRecord {
	var recs []detect.SliceRecord
	for r := 0; r < ranks; r++ {
		for c := 0; c < cols; c++ {
			d := dur(r, c)
			if d <= 0 {
				continue
			}
			recs = append(recs, detect.SliceRecord{
				Sensor: 0, Rank: r, SliceNs: int64(c) * colNs, Count: 10, AvgNs: d,
			})
		}
	}
	return recs
}

var compOnly = map[int]ir.SnippetType{0: ir.Computation}

func TestBuildNormalization(t *testing.T) {
	// Rank 1 runs 2x slower everywhere.
	recs := synth(4, 10, 1_000_000, func(r, c int) float64 {
		if r == 1 {
			return 200
		}
		return 100
	})
	ms := Build(recs, compOnly, 4, 1_000_000)
	m := ms[ir.Computation]
	if m == nil {
		t.Fatal("no computation matrix")
	}
	if m.Cols() != 10 {
		t.Fatalf("cols = %d", m.Cols())
	}
	if v := m.Cells[0][0]; v != 1.0 {
		t.Errorf("fast rank perf = %v", v)
	}
	if v := m.Cells[1][3]; v != 0.5 {
		t.Errorf("slow rank perf = %v", v)
	}
	if m.Coverage != 1.0 {
		t.Errorf("coverage = %v", m.Coverage)
	}
}

func TestEmptyCellsNaN(t *testing.T) {
	recs := synth(2, 4, 1_000_000, func(r, c int) float64 {
		if r == 0 && c == 2 {
			return 0 // missing
		}
		return 50
	})
	m := Build(recs, compOnly, 2, 1_000_000)[ir.Computation]
	if !math.IsNaN(m.Cells[0][2]) {
		t.Error("missing cell should be NaN")
	}
	if m.Coverage >= 1.0 {
		t.Errorf("coverage = %v", m.Coverage)
	}
}

func TestLowRankBands(t *testing.T) {
	// Ranks 5..7 are persistently slow: a bad-node band (Fig. 21 shape).
	recs := synth(16, 20, 1_000_000, func(r, c int) float64 {
		if r >= 5 && r <= 7 {
			return 180
		}
		return 100
	})
	m := Build(recs, compOnly, 16, 1_000_000)[ir.Computation]
	bands := m.LowRankBands(0.8, 0.9)
	if len(bands) != 1 {
		t.Fatalf("bands = %+v", bands)
	}
	if bands[0].First != 5 || bands[0].Last != 7 {
		t.Errorf("band = %+v", bands[0])
	}
	if bands[0].MeanPerf > 0.6 {
		t.Errorf("band mean perf = %v", bands[0].MeanPerf)
	}
}

func TestLowTimeWindows(t *testing.T) {
	// Columns 8..12 are slow on every rank: a network window (Fig. 22).
	recs := synth(8, 20, 1_000_000, func(r, c int) float64 {
		if c >= 8 && c <= 12 {
			return 400
		}
		return 100
	})
	m := Build(recs, compOnly, 8, 1_000_000)[ir.Computation]
	wins := m.LowTimeWindows(0.8, 0.9)
	if len(wins) != 1 {
		t.Fatalf("windows = %+v", wins)
	}
	if wins[0].StartNs != 8_000_000 || wins[0].EndNs != 13_000_000 {
		t.Errorf("window = %+v", wins[0])
	}
}

func TestLowBlocks(t *testing.T) {
	// Two injected-noise blocks (Fig. 20 shape): ranks 2-4 during cols 5-8,
	// ranks 10-12 during cols 14-17.
	recs := synth(16, 24, 1_000_000, func(r, c int) float64 {
		if r >= 2 && r <= 4 && c >= 5 && c <= 8 {
			return 300
		}
		if r >= 10 && r <= 12 && c >= 14 && c <= 17 {
			return 300
		}
		return 100
	})
	m := Build(recs, compOnly, 16, 1_000_000)[ir.Computation]
	blocks := m.LowBlocks(0.8, 0.05)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
	b0, b1 := blocks[0], blocks[1]
	if b0.FirstRank != 2 || b0.LastRank != 4 || b0.StartNs != 5_000_000 {
		t.Errorf("block 0 = %+v", b0)
	}
	if b1.FirstRank != 10 || b1.LastRank != 12 || b1.StartNs != 14_000_000 {
		t.Errorf("block 1 = %+v", b1)
	}
}

func TestCleanMatrixNoStructures(t *testing.T) {
	recs := synth(8, 20, 1_000_000, func(r, c int) float64 { return 100 })
	m := Build(recs, compOnly, 8, 1_000_000)[ir.Computation]
	if bands := m.LowRankBands(0.8, 0.5); len(bands) != 0 {
		t.Errorf("clean matrix has bands: %+v", bands)
	}
	if wins := m.LowTimeWindows(0.8, 0.5); len(wins) != 0 {
		t.Errorf("clean matrix has windows: %+v", wins)
	}
	if mp := m.MeanPerf(); mp < 0.99 {
		t.Errorf("mean perf = %v", mp)
	}
}

func TestRenderers(t *testing.T) {
	recs := synth(4, 6, 1_000_000, func(r, c int) float64 {
		if r == 2 {
			return 250
		}
		return 100
	})
	m := Build(recs, compOnly, 4, 1_000_000)[ir.Computation]

	ascii := m.ASCII(8, 40)
	if !strings.Contains(ascii, "Comp performance matrix") || len(strings.Split(ascii, "\n")) < 4 {
		t.Errorf("ascii:\n%s", ascii)
	}

	csv := m.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "rank,") {
		t.Errorf("csv:\n%s", csv)
	}
	if !strings.Contains(lines[3], "0.4") { // rank 2 ≈ 0.4 perf
		t.Errorf("slow rank row: %s", lines[3])
	}

	pgm := m.PGM()
	if !strings.HasPrefix(pgm, "P2\n6 4\n255\n") {
		t.Errorf("pgm header:\n%s", pgm[:20])
	}
}

func TestMultiTypeSeparation(t *testing.T) {
	types := map[int]ir.SnippetType{0: ir.Computation, 1: ir.Network}
	var recs []detect.SliceRecord
	for c := 0; c < 5; c++ {
		recs = append(recs,
			detect.SliceRecord{Sensor: 0, Rank: 0, SliceNs: int64(c) * 1_000_000, Count: 1, AvgNs: 100},
			detect.SliceRecord{Sensor: 1, Rank: 0, SliceNs: int64(c) * 1_000_000, Count: 1, AvgNs: 900},
		)
	}
	ms := Build(recs, types, 1, 1_000_000)
	if len(ms) != 2 || ms[ir.Computation] == nil || ms[ir.Network] == nil {
		t.Fatalf("matrices = %v", ms)
	}
	// Each type normalizes independently: both are at their own best.
	if ms[ir.Network].Cells[0][0] != 1.0 {
		t.Errorf("net perf = %v", ms[ir.Network].Cells[0][0])
	}
}
