package vis

import (
	"bytes"
	"image/png"
	"math"
	"testing"
)

func TestPNGEncodesAndScales(t *testing.T) {
	recs := synth(4, 6, 1_000_000, func(r, c int) float64 {
		if r == 2 {
			return 250
		}
		return 100
	})
	m := Build(recs, compOnly, 4, 1_000_000)[compOnly[0]]
	var buf bytes.Buffer
	if err := m.PNG(&buf, 5, 3); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 6*5 || b.Dy() != 4*3 {
		t.Errorf("image size = %dx%d", b.Dx(), b.Dy())
	}
	// Fast rank is deep blue (low red), slow rank is whiter (high red).
	fast := img.At(0, 0)
	slow := img.At(0, 2*3)
	fr, _, _, _ := fast.RGBA()
	sr, _, _, _ := slow.RGBA()
	if sr <= fr {
		t.Errorf("slow rank should render whiter: fast-red=%d slow-red=%d", fr, sr)
	}
}

func TestPNGEmptyMatrix(t *testing.T) {
	m := &Matrix{}
	var buf bytes.Buffer
	if err := m.PNG(&buf, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestCellColorRamp(t *testing.T) {
	best := cellColor(1.0)
	half := cellColor(0.5)
	nan := cellColor(math.NaN())
	if best.B <= best.R {
		t.Errorf("best should be blue: %+v", best)
	}
	if half.R != 255 || half.G != 255 || half.B != 255 {
		t.Errorf("half-of-best should be white: %+v", half)
	}
	if below := cellColor(0.2); below != half {
		t.Errorf("below-half clamps to white: %+v", below)
	}
	if nan.R != 0xdd {
		t.Errorf("no-data should be grey: %+v", nan)
	}
}
