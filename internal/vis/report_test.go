package vis

import (
	"strings"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/ir"
)

func TestDiagnoseBadRanks(t *testing.T) {
	recs := synth(16, 20, 1_000_000, func(r, c int) float64 {
		if r >= 4 && r <= 5 {
			return 200
		}
		return 100
	})
	mats := Build(recs, compOnly, 16, 1_000_000)
	fs := Diagnose(mats, ReportConfig{})
	if len(fs) != 1 || fs[0].Kind != BadRanks {
		t.Fatalf("findings = %+v", fs)
	}
	if fs[0].FirstRank != 4 || fs[0].LastRank != 5 {
		t.Errorf("band = %+v", fs[0])
	}
	out := RenderReport(fs, 4)
	if !strings.Contains(out, "ranks 4-5") || !strings.Contains(out, "node 1") {
		t.Errorf("report:\n%s", out)
	}
	if !strings.Contains(out, "bad node hardware") {
		t.Errorf("computation band should suspect hardware:\n%s", out)
	}
}

func TestDiagnoseDegradedPeriod(t *testing.T) {
	netOnly := map[int]ir.SnippetType{0: ir.Network}
	recs := synth(8, 20, 1_000_000, func(r, c int) float64 {
		if c >= 10 && c <= 14 {
			return 500
		}
		return 100
	})
	mats := Build(recs, netOnly, 8, 1_000_000)
	fs := Diagnose(mats, ReportConfig{})
	if len(fs) != 1 || fs[0].Kind != DegradedPeriod || fs[0].Component != ir.Network {
		t.Fatalf("findings = %+v", fs)
	}
	out := RenderReport(fs, 0)
	if !strings.Contains(out, "network congestion") {
		t.Errorf("report:\n%s", out)
	}
}

func TestDiagnoseLocalizedBlock(t *testing.T) {
	recs := synth(16, 30, 1_000_000, func(r, c int) float64 {
		if r >= 2 && r <= 4 && c >= 10 && c <= 15 {
			return 300
		}
		return 100
	})
	mats := Build(recs, compOnly, 16, 1_000_000)
	fs := Diagnose(mats, ReportConfig{})
	if len(fs) != 1 || fs[0].Kind != LocalizedBlock {
		t.Fatalf("findings = %+v", fs)
	}
	out := RenderReport(fs, 0)
	if !strings.Contains(out, "CPU contention") {
		t.Errorf("report:\n%s", out)
	}
}

// A block already explained by a degraded period is not double-reported.
func TestDiagnoseDeduplicates(t *testing.T) {
	recs := synth(8, 20, 1_000_000, func(r, c int) float64 {
		if c >= 5 && c <= 8 {
			return 400
		}
		return 100
	})
	mats := Build(recs, compOnly, 8, 1_000_000)
	fs := Diagnose(mats, ReportConfig{})
	kinds := map[FindingKind]int{}
	for _, f := range fs {
		kinds[f.Kind]++
	}
	if kinds[DegradedPeriod] != 1 || kinds[LocalizedBlock] != 0 {
		t.Errorf("findings = %+v", fs)
	}
}

func TestRenderReportEmpty(t *testing.T) {
	out := RenderReport(nil, 0)
	if !strings.Contains(out, "no performance variance") {
		t.Errorf("report: %s", out)
	}
}

func TestDiagnoseIOComponent(t *testing.T) {
	ioOnly := map[int]ir.SnippetType{0: ir.IO}
	var recs []detect.SliceRecord
	for r := 0; r < 4; r++ {
		for c := 0; c < 10; c++ {
			avg := 100.0
			if c >= 4 && c <= 6 {
				avg = 300
			}
			recs = append(recs, detect.SliceRecord{Sensor: 0, Rank: r, SliceNs: int64(c) * 1_000_000, Count: 1, AvgNs: avg})
		}
	}
	mats := Build(recs, ioOnly, 4, 1_000_000)
	fs := Diagnose(mats, ReportConfig{})
	out := RenderReport(fs, 0)
	if !strings.Contains(out, "shared-filesystem") {
		t.Errorf("report:\n%s", out)
	}
}

func TestFindingKindString(t *testing.T) {
	if BadRanks.String() == "?" || DegradedPeriod.String() == "?" || LocalizedBlock.String() == "?" {
		t.Error("kind names missing")
	}
}
