// Package vis builds and renders the performance matrices of paper §5.5:
// for each component type (Computation / Network / IO), a time × rank grid
// of normalized performance where 1.0 is the best observed and low values
// — the paper's "white blocks" — mark performance variance. It also
// extracts the structures the case studies look for: persistent low-
// performance rank bands (bad node, Fig. 21) and time-bounded low windows
// across all ranks (network degradation, Fig. 22).
package vis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vsensor/internal/detect"
	"vsensor/internal/ir"
)

// Matrix is a time × rank grid of normalized performance for one component
// type. Cells[r][c] is rank r's performance in time column c; cells with no
// data hold NaN.
type Matrix struct {
	Type     ir.SnippetType
	Ranks    int
	ColNs    int64 // column resolution in virtual ns
	StartNs  int64
	Cells    [][]float64 // [rank][col]
	Coverage float64     // fraction of cells with data
}

// Build constructs per-type matrices from slice records. sensorTypes maps
// sensor IDs to their component type; colNs sets the rendering resolution
// (the paper's Fig. 14 uses 200ms columns). Normalization follows §5.2:
// each sensor's fastest slice average (across every rank) becomes 1.0, and
// per-cell performance is the mean normalized performance of contributing
// sensor slices.
func Build(recs []detect.SliceRecord, sensorTypes map[int]ir.SnippetType, ranks int, colNs int64) map[ir.SnippetType]*Matrix {
	if colNs <= 0 {
		colNs = 200_000_000
	}
	// Per-sensor best average — the normalization standard.
	best := make(map[int]float64)
	var maxT int64
	for _, r := range recs {
		if b, ok := best[r.Sensor]; !ok || r.AvgNs < b {
			best[r.Sensor] = r.AvgNs
		}
		if r.SliceNs > maxT {
			maxT = r.SliceNs
		}
	}
	cols := int(maxT/colNs) + 1

	type cellAgg struct {
		sum float64
		n   int
	}
	aggs := make(map[ir.SnippetType][][]cellAgg)
	get := func(t ir.SnippetType) [][]cellAgg {
		if a, ok := aggs[t]; ok {
			return a
		}
		a := make([][]cellAgg, ranks)
		for i := range a {
			a[i] = make([]cellAgg, cols)
		}
		aggs[t] = a
		return a
	}

	for _, r := range recs {
		if r.Rank >= ranks || r.AvgNs <= 0 {
			continue
		}
		typ, ok := sensorTypes[r.Sensor]
		if !ok {
			continue
		}
		col := int(r.SliceNs / colNs)
		perf := best[r.Sensor] / r.AvgNs
		if perf > 1 {
			perf = 1
		}
		a := get(typ)
		a[r.Rank][col].sum += perf
		a[r.Rank][col].n++
	}

	out := make(map[ir.SnippetType]*Matrix, len(aggs))
	for typ, a := range aggs {
		m := &Matrix{Type: typ, Ranks: ranks, ColNs: colNs, Cells: make([][]float64, ranks)}
		filled := 0
		for r := 0; r < ranks; r++ {
			m.Cells[r] = make([]float64, cols)
			for c := 0; c < cols; c++ {
				if a[r][c].n == 0 {
					m.Cells[r][c] = math.NaN()
					continue
				}
				m.Cells[r][c] = a[r][c].sum / float64(a[r][c].n)
				filled++
			}
		}
		if ranks*cols > 0 {
			m.Coverage = float64(filled) / float64(ranks*cols)
		}
		out[typ] = m
	}
	return out
}

// Cols returns the number of time columns.
func (m *Matrix) Cols() int {
	if len(m.Cells) == 0 {
		return 0
	}
	return len(m.Cells[0])
}

// MeanPerf returns the mean performance over cells with data.
func (m *Matrix) MeanPerf() float64 {
	sum, n := 0.0, 0
	for _, row := range m.Cells {
		for _, v := range row {
			if !math.IsNaN(v) {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// ---------- structure extraction ----------

// RankBand is a contiguous set of ranks with persistently low performance —
// the horizontal "white line" of the bad-node case study (Fig. 21).
type RankBand struct {
	First, Last int     // inclusive rank range
	MeanPerf    float64 // mean performance of the band's rows
}

// LowRankBands finds ranks whose mean row performance is below threshold in
// at least minFrac of their populated columns, merged into contiguous bands.
func (m *Matrix) LowRankBands(threshold, minFrac float64) []RankBand {
	low := make([]bool, m.Ranks)
	rowMean := make([]float64, m.Ranks)
	for r, row := range m.Cells {
		lowCells, dataCells := 0, 0
		sum := 0.0
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			dataCells++
			sum += v
			if v < threshold {
				lowCells++
			}
		}
		if dataCells > 0 {
			rowMean[r] = sum / float64(dataCells)
			low[r] = float64(lowCells)/float64(dataCells) >= minFrac
		}
	}
	var bands []RankBand
	for r := 0; r < m.Ranks; r++ {
		if !low[r] {
			continue
		}
		first := r
		sum := 0.0
		for r < m.Ranks && low[r] {
			sum += rowMean[r]
			r++
		}
		bands = append(bands, RankBand{First: first, Last: r - 1, MeanPerf: sum / float64(r-first)})
	}
	return bands
}

// TimeWindow is a contiguous span of time columns during which most ranks
// run slow — the vertical block of the network-degradation case (Fig. 22).
type TimeWindow struct {
	StartNs, EndNs int64
	MeanPerf       float64
}

// LowTimeWindows finds columns where at least rankFrac of populated ranks
// are below threshold, merged into contiguous windows. Columns with no
// data at all (sensors that fire sparsely relative to the resolution) do
// not break a window: they are bridged as long as the next populated
// column is low again.
func (m *Matrix) LowTimeWindows(threshold, rankFrac float64) []TimeWindow {
	cols := m.Cols()
	low := make([]bool, cols)
	hasData := make([]bool, cols)
	colMean := make([]float64, cols)
	for c := 0; c < cols; c++ {
		lowCells, dataCells := 0, 0
		sum := 0.0
		for r := 0; r < m.Ranks; r++ {
			v := m.Cells[r][c]
			if math.IsNaN(v) {
				continue
			}
			dataCells++
			sum += v
			if v < threshold {
				lowCells++
			}
		}
		if dataCells > 0 {
			hasData[c] = true
			colMean[c] = sum / float64(dataCells)
			low[c] = float64(lowCells)/float64(dataCells) >= rankFrac
		}
	}
	var wins []TimeWindow
	for c := 0; c < cols; c++ {
		if !low[c] {
			continue
		}
		first := c
		last := c
		sum := colMean[c]
		n := 1
		for j := c + 1; j < cols; j++ {
			if !hasData[j] {
				continue // bridge data-free gaps
			}
			if !low[j] {
				break
			}
			sum += colMean[j]
			n++
			last = j
		}
		c = last
		wins = append(wins, TimeWindow{
			StartNs:  int64(first) * m.ColNs,
			EndNs:    int64(last+1) * m.ColNs,
			MeanPerf: sum / float64(n),
		})
	}
	return wins
}

// Blocks finds rectangular low-performance regions bounded in both time and
// ranks (the injected-noise blocks of Fig. 20): for each low time window it
// reports the contiguous rank ranges that are low within it.
type Block struct {
	StartNs, EndNs      int64
	FirstRank, LastRank int
	MeanPerf            float64
}

// LowBlocks extracts rectangular variance regions.
func (m *Matrix) LowBlocks(threshold, minFrac float64) []Block {
	cols := m.Cols()
	var blocks []Block
	// Scan per rank for low runs, then merge adjacent ranks with
	// overlapping spans.
	type span struct{ a, b int }
	rankSpans := make([][]span, m.Ranks)
	for r := 0; r < m.Ranks; r++ {
		for c := 0; c < cols; c++ {
			v := m.Cells[r][c]
			if math.IsNaN(v) || v >= threshold {
				continue
			}
			start := c
			for c < cols && !math.IsNaN(m.Cells[r][c]) && m.Cells[r][c] < threshold {
				c++
			}
			if c-start >= 1 {
				rankSpans[r] = append(rankSpans[r], span{start, c})
			}
		}
	}
	used := make([]map[span]bool, m.Ranks)
	for r := range used {
		used[r] = make(map[span]bool)
	}
	overlap := func(x, y span) bool { return x.a < y.b && y.a < x.b }
	for r := 0; r < m.Ranks; r++ {
		for _, sp := range rankSpans[r] {
			if used[r][sp] {
				continue
			}
			used[r][sp] = true
			first, last := r, r
			lo, hi := sp.a, sp.b
			sum, n := 0.0, 0
			// Grow downward through adjacent ranks with overlapping spans.
			for rr := r + 1; rr < m.Ranks; rr++ {
				found := false
				for _, sp2 := range rankSpans[rr] {
					if !used[rr][sp2] && overlap(span{lo, hi}, sp2) {
						used[rr][sp2] = true
						if sp2.a < lo {
							lo = sp2.a
						}
						if sp2.b > hi {
							hi = sp2.b
						}
						last = rr
						found = true
						break
					}
				}
				if !found {
					break
				}
			}
			for rr := first; rr <= last; rr++ {
				for c := lo; c < hi && c < cols; c++ {
					v := m.Cells[rr][c]
					if !math.IsNaN(v) {
						sum += v
						n++
					}
				}
			}
			if n == 0 {
				continue
			}
			blk := Block{
				StartNs: int64(lo) * m.ColNs, EndNs: int64(hi) * m.ColNs,
				FirstRank: first, LastRank: last,
				MeanPerf: sum / float64(n),
			}
			// Require the block to be meaningfully sized.
			if float64(hi-lo) >= minFrac*float64(cols) || last-first >= 1 {
				blocks = append(blocks, blk)
			}
		}
	}
	sort.Slice(blocks, func(i, j int) bool {
		if blocks[i].StartNs != blocks[j].StartNs {
			return blocks[i].StartNs < blocks[j].StartNs
		}
		return blocks[i].FirstRank < blocks[j].FirstRank
	})
	return blocks
}

// ---------- rendering ----------

// ASCII renders the matrix as a text heatmap: '#' best … '.' worst,
// ' ' for no data. Rows are ranks (downsampled to at most maxRows),
// columns time (downsampled to at most maxCols).
func (m *Matrix) ASCII(maxRows, maxCols int) string {
	if maxRows <= 0 {
		maxRows = 32
	}
	if maxCols <= 0 {
		maxCols = 80
	}
	cols := m.Cols()
	if cols == 0 {
		return "(empty matrix)\n"
	}
	rStep := (m.Ranks + maxRows - 1) / maxRows
	cStep := (cols + maxCols - 1) / maxCols
	ramp := []byte(".:-=+*%@#") // low → high performance
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s performance matrix: %d ranks x %d cols, %.2fms/col\n",
		m.Type, m.Ranks, cols, float64(m.ColNs)/1e6)
	for r := 0; r < m.Ranks; r += rStep {
		for c := 0; c < cols; c += cStep {
			sum, n := 0.0, 0
			for rr := r; rr < r+rStep && rr < m.Ranks; rr++ {
				for cc := c; cc < c+cStep && cc < cols; cc++ {
					if v := m.Cells[rr][cc]; !math.IsNaN(v) {
						sum += v
						n++
					}
				}
			}
			if n == 0 {
				sb.WriteByte(' ')
				continue
			}
			v := sum / float64(n)
			idx := int(v * float64(len(ramp)))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			if idx < 0 {
				idx = 0
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders the matrix as comma-separated values with a header row of
// column start times in seconds; empty cells are blank.
func (m *Matrix) CSV() string {
	var sb strings.Builder
	cols := m.Cols()
	sb.WriteString("rank")
	for c := 0; c < cols; c++ {
		fmt.Fprintf(&sb, ",%.3f", float64(int64(c)*m.ColNs)/1e9)
	}
	sb.WriteByte('\n')
	for r := 0; r < m.Ranks; r++ {
		fmt.Fprintf(&sb, "%d", r)
		for c := 0; c < cols; c++ {
			if v := m.Cells[r][c]; math.IsNaN(v) {
				sb.WriteByte(',')
			} else {
				fmt.Fprintf(&sb, ",%.4f", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PGM renders the matrix as a binary-ascii PGM image (P2), 0 = worst
// (white in the paper's figures is low performance; here 255 = best).
func (m *Matrix) PGM() string {
	cols := m.Cols()
	var sb strings.Builder
	fmt.Fprintf(&sb, "P2\n%d %d\n255\n", cols, m.Ranks)
	for r := 0; r < m.Ranks; r++ {
		for c := 0; c < cols; c++ {
			v := m.Cells[r][c]
			px := 0
			if !math.IsNaN(v) {
				px = int(v * 255)
				if px > 255 {
					px = 255
				}
				if px < 0 {
					px = 0
				}
			}
			if c > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", px)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
