package mpisim

import (
	"sync"
	"testing"

	"vsensor/internal/cluster"
)

func newWorld(p int) *World {
	c := cluster.New(cluster.Config{Nodes: p, RanksPerNode: 1})
	return NewWorld(p, c)
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := newWorld(8)
	var mu sync.Mutex
	exits := make([]int64, 8)
	w.Run(func(p *Proc) {
		// Each rank does a different amount of work first.
		p.Compute(float64(p.Rank)*1e6, 0)
		p.Barrier()
		mu.Lock()
		exits[p.Rank] = p.Now()
		mu.Unlock()
	})
	for r := 1; r < 8; r++ {
		if exits[r] != exits[0] {
			t.Fatalf("barrier exit times differ: %v", exits)
		}
	}
	// The barrier exit must not precede the slowest rank's arrival (~7ms).
	if exits[0] < 7_000_000 {
		t.Errorf("barrier exited before slowest arrival: %d", exits[0])
	}
}

func TestSendRecvTiming(t *testing.T) {
	w := newWorld(2)
	var recvTime int64
	var got float64
	w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Compute(5e6, 0) // sender is slow to post
			p.Send(1, 1<<20, 42)
		} else {
			got = p.Recv(0, 1<<20)
			recvTime = p.Now()
		}
	})
	if got != 42 {
		t.Errorf("received value = %v", got)
	}
	// Receiver completes after the send post (~5ms) plus transfer.
	if recvTime < 5_000_000 {
		t.Errorf("recv completed too early: %d", recvTime)
	}
}

func TestSendRecvExchange(t *testing.T) {
	w := newWorld(4)
	var mu sync.Mutex
	vals := make([]float64, 4)
	w.Run(func(p *Proc) {
		peer := p.Rank ^ 1
		v := p.SendRecv(peer, 4096, float64(p.Rank))
		mu.Lock()
		vals[p.Rank] = v
		mu.Unlock()
	})
	want := []float64{1, 0, 3, 2}
	for i := range vals {
		if vals[i] != want[i] {
			t.Errorf("rank %d exchanged value %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestSelfSendRecv(t *testing.T) {
	w := newWorld(2)
	w.Run(func(p *Proc) {
		if v := p.SendRecv(p.Rank, 64, 7); v != 7 {
			t.Errorf("self exchange value = %v", v)
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	w := newWorld(16)
	var mu sync.Mutex
	sums := make([]float64, 16)
	w.Run(func(p *Proc) {
		s := p.Allreduce(8, float64(p.Rank))
		mu.Lock()
		sums[p.Rank] = s
		mu.Unlock()
	})
	want := float64(15 * 16 / 2)
	for r, s := range sums {
		if s != want {
			t.Fatalf("rank %d allreduce = %v, want %v", r, s, want)
		}
	}
}

func TestBcastValue(t *testing.T) {
	w := newWorld(8)
	var mu sync.Mutex
	vals := make([]float64, 8)
	w.Run(func(p *Proc) {
		var v float64
		if p.Rank == 3 {
			v = 99
		}
		got := p.Bcast(3, 64, v)
		mu.Lock()
		vals[p.Rank] = got
		mu.Unlock()
	})
	for r, v := range vals {
		if v != 99 {
			t.Errorf("rank %d bcast = %v", r, v)
		}
	}
}

func TestConsecutiveCollectivesIndependent(t *testing.T) {
	w := newWorld(4)
	w.Run(func(p *Proc) {
		a := p.Allreduce(8, 1)
		b := p.Allreduce(8, 2)
		if a != 4 || b != 8 {
			t.Errorf("rank %d: a=%v b=%v", p.Rank, a, b)
		}
	})
}

func TestNetworkWindowSlowsCollective(t *testing.T) {
	mk := func(degrade bool) int64 {
		c := cluster.New(cluster.Config{Nodes: 8, RanksPerNode: 1})
		if degrade {
			c.AddNetWindow(0, 1<<62, 0.1)
		}
		w := NewWorld(8, c)
		return w.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Alltoall(1 << 16)
			}
		})
	}
	normal, slow := mk(false), mk(true)
	if slow < normal*5 {
		t.Errorf("degraded network should be ~10x slower: %d vs %d", slow, normal)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() int64 {
		c := cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 2, Seed: 7, JitterPct: 0.02})
		w := NewWorld(8, c)
		return w.Run(func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Compute(1e5, 1e4)
				p.SendRecv(p.Rank^1, 4096, 0)
				if i%5 == 0 {
					p.Barrier()
				}
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs not deterministic: %d vs %d", a, b)
	}
}

func TestRunReturnsMaxClock(t *testing.T) {
	w := newWorld(4)
	total := w.Run(func(p *Proc) {
		p.Compute(float64(p.Rank)*1e6+1, 0)
	})
	if total < 3_000_000 {
		t.Errorf("total = %d, want >= slowest rank", total)
	}
}

func TestManyRanksBarrierScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := cluster.New(cluster.Config{Nodes: 256, RanksPerNode: 16})
	w := NewWorld(4096, c)
	total := w.Run(func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Compute(1e4, 0)
			p.Barrier()
		}
	})
	if total <= 0 {
		t.Error("no time elapsed")
	}
}

func TestPanicsOnBadPeer(t *testing.T) {
	w := newWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range peer")
		}
	}()
	p := w.Proc(0)
	p.Send(5, 1, 0)
}
