// Package mpisim is a message-passing runtime over simulated ranks. Each
// rank runs as a goroutine with its own virtual clock; communication
// operations synchronize clocks and charge costs through the cluster's
// network model. It stands in for MPI on the paper's Tianhe-2 testbed:
// barrier, point-to-point send/recv/sendrecv, and the bcast / reduce /
// allreduce / alltoall collectives.
package mpisim

import (
	"fmt"
	"sync"

	"vsensor/internal/cluster"
	"vsensor/internal/obs"
)

// World is one parallel job: P ranks on a cluster.
type World struct {
	P       int
	Cluster *cluster.Cluster

	// colls holds one slot per collective instance. Entries are retained
	// for the lifetime of the world (one small struct per collective call,
	// not per rank), which keeps every rank free to read its exit time.
	colls sync.Map // "kind#seq" -> *collSlot
	pairs sync.Map // "src>dst" -> chan message

	// Communication counters, resolved once by SetObs before the ranks
	// start (the map is then read-only, so rank goroutines may share it).
	obsColl     map[string]*obs.Counter
	obsP2PMsgs  *obs.Counter
	obsP2PBytes *obs.Counter
}

// SetObs attaches communication metrics (mpi_collectives_total{kind=...},
// mpi_p2p_messages_total, mpi_p2p_bytes_total). Must be called before Run.
func (w *World) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	w.obsColl = make(map[string]*obs.Counter)
	for _, kind := range []string{"barrier", "bcast", "reduce", "allreduce", "alltoall"} {
		w.obsColl[kind] = o.Counter("mpi_collectives_total", "kind", kind)
	}
	w.obsP2PMsgs = o.Counter("mpi_p2p_messages_total")
	w.obsP2PBytes = o.Counter("mpi_p2p_bytes_total")
}

// message is an in-flight point-to-point payload.
type message struct {
	sentAt int64
	bytes  int64
	value  float64
}

// Proc is one rank's handle: its clock and communication endpoints.
// Methods must only be called from the rank's own goroutine.
type Proc struct {
	Rank  int
	World *World
	now   int64

	collSeq map[string]int // local per-kind collective counters
}

// NewWorld creates a job with p ranks on c.
func NewWorld(p int, c *cluster.Cluster) *World {
	if p <= 0 {
		panic("mpisim: world needs at least one rank")
	}
	return &World{P: p, Cluster: c}
}

// Proc returns the handle for one rank.
func (w *World) Proc(rank int) *Proc {
	if rank < 0 || rank >= w.P {
		panic(fmt.Sprintf("mpisim: rank %d out of range [0,%d)", rank, w.P))
	}
	return &Proc{Rank: rank, World: w, collSeq: make(map[string]int)}
}

// Run spawns one goroutine per rank executing body and waits for all of
// them. It returns the maximum final clock across ranks (the job's
// execution time).
func (w *World) Run(body func(p *Proc)) int64 {
	var wg sync.WaitGroup
	procs := make([]*Proc, w.P)
	for r := 0; r < w.P; r++ {
		procs[r] = w.Proc(r)
	}
	wg.Add(w.P)
	for r := 0; r < w.P; r++ {
		go func(p *Proc) {
			defer wg.Done()
			body(p)
		}(procs[r])
	}
	wg.Wait()
	var max int64
	for _, p := range procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}

// Now returns the rank's virtual clock.
func (p *Proc) Now() int64 { return p.now }

// AdvanceTo moves the clock forward to t (no-op if t is in the past).
func (p *Proc) AdvanceTo(t int64) {
	if t > p.now {
		p.now = t
	}
}

// Compute charges cpuNs of nominal CPU work and memNs of nominal memory
// work at the current time, through the cluster's speed model.
func (p *Proc) Compute(cpuNs, memNs float64) {
	p.now += p.World.Cluster.ComputeCost(p.Rank, p.now, cpuNs, memNs)
}

// ---------- point-to-point ----------

func (w *World) pair(src, dst int) chan message {
	key := fmt.Sprintf("%d>%d", src, dst)
	if ch, ok := w.pairs.Load(key); ok {
		return ch.(chan message)
	}
	ch := make(chan message, 4096)
	actual, _ := w.pairs.LoadOrStore(key, ch)
	return actual.(chan message)
}

// Send posts bytes to dst. Eager semantics: the sender continues after a
// local injection overhead; the transfer cost is charged at the receiver.
func (p *Proc) Send(dst int, bytes int64, value float64) {
	p.checkPeer(dst)
	p.World.obsP2PMsgs.Inc()
	p.World.obsP2PBytes.Add(bytes)
	p.World.pair(p.Rank, dst) <- message{sentAt: p.now, bytes: bytes, value: value}
	// Injection overhead: a fraction of the latency.
	p.now += p.World.Cluster.P2PCost(p.now, 0) / 4
}

// Recv blocks for a message from src and returns its value. Completion time
// is the later of the local post time and the send time, plus the transfer.
func (p *Proc) Recv(src int, bytes int64) float64 {
	p.checkPeer(src)
	m := <-p.World.pair(src, p.Rank)
	start := p.now
	if m.sentAt > start {
		start = m.sentAt
	}
	n := bytes
	if m.bytes > n {
		n = m.bytes
	}
	p.now = start + p.World.Cluster.P2PCost(start, n)
	return m.value
}

// SendRecv exchanges bytes with peer and returns the received value.
func (p *Proc) SendRecv(peer int, bytes int64, value float64) float64 {
	if peer == p.Rank {
		p.now += 1
		return value
	}
	p.Send(peer, bytes, value)
	return p.Recv(peer, bytes)
}

func (p *Proc) checkPeer(r int) {
	if r < 0 || r >= p.World.P {
		panic(fmt.Sprintf("mpisim: rank %d: peer %d out of range [0,%d)", p.Rank, r, p.World.P))
	}
}

// ---------- collectives ----------

// collSlot synchronizes one collective instance across all ranks.
type collSlot struct {
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	maxT    int64
	sum     float64
	exit    int64
	done    bool
}

func (w *World) slot(kind string, seq int) *collSlot {
	key := fmt.Sprintf("%s#%d", kind, seq)
	if s, ok := w.colls.Load(key); ok {
		return s.(*collSlot)
	}
	s := &collSlot{}
	s.cond = sync.NewCond(&s.mu)
	actual, loaded := w.colls.LoadOrStore(key, s)
	if loaded {
		return actual.(*collSlot)
	}
	return s
}

// collective runs one instance of a collective: all ranks arrive, the exit
// time is the latest arrival plus the modeled cost, and the value-sum is
// available for reductions. Ranks must call collectives in the same order
// (standard MPI requirement).
func (p *Proc) collective(kind string, bytes int64, contrib float64) float64 {
	p.World.obsColl[kind].Inc() // nil map lookup + nil Inc are both no-ops
	seq := p.collSeq[kind]
	p.collSeq[kind] = seq + 1
	s := p.World.slot(kind, seq)

	s.mu.Lock()
	s.arrived++
	if p.now > s.maxT {
		s.maxT = p.now
	}
	s.sum += contrib
	if s.arrived == p.World.P {
		s.exit = s.maxT + p.World.Cluster.CollectiveCost(kind, p.World.P, bytes, s.maxT)
		s.done = true
		s.cond.Broadcast()
	} else {
		for !s.done {
			s.cond.Wait()
		}
	}
	exit, sum := s.exit, s.sum
	s.mu.Unlock()

	p.now = exit
	return sum
}

// Barrier synchronizes all ranks (paper Fig. 4's MPI_Barrier).
func (p *Proc) Barrier() { p.collective("barrier", 0, 0) }

// Allreduce reduces contrib across all ranks (sum) moving bytes per rank.
func (p *Proc) Allreduce(bytes int64, contrib float64) float64 {
	return p.collective("allreduce", bytes, contrib)
}

// Alltoall performs the personalized all-to-all exchange of bytes per rank
// — the operation that made FT vulnerable to network problems (paper §6.5).
func (p *Proc) Alltoall(bytes int64) {
	p.collective("alltoall", bytes, 0)
}

// Bcast broadcasts from root; the returned value is the root's contribution.
func (p *Proc) Bcast(root int, bytes int64, value float64) float64 {
	var contrib float64
	if p.Rank == root {
		contrib = value
	}
	return p.collective("bcast", bytes, contrib)
}

// Reduce reduces contrib to root (sum); all ranks receive the sum here for
// simplicity, matching the simulator's needs.
func (p *Proc) Reduce(root int, bytes int64, contrib float64) float64 {
	return p.collective("reduce", bytes, contrib)
}
