package netsrv

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vsensor/internal/obs"
	"vsensor/internal/server"
)

// MaxEnvelopeBytes caps a single envelope's declared payload length. The
// largest legal data frame (MaxFrameRecords records plus the vSF2 header)
// is ~40 MiB; 64 MiB leaves headroom without letting a hostile length
// prefix allocate the machine away.
const MaxEnvelopeBytes = 64 << 20

// Config shapes a Service. The zero value is usable: defaults fill in a
// single-shard tenant factory and a small worker pool.
type Config struct {
	// MinWorkers and MaxWorkers bound the session worker pool. The pool
	// holds MinWorkers goroutines when idle and grows toward MaxWorkers
	// while the accept queue has depth. Defaults: 1 and 8.
	MinWorkers int
	MaxWorkers int

	// AcceptQueue bounds connections waiting for a worker. A connection
	// arriving to a full queue is shed: it gets an explicit vSE1 busy
	// reply with RetryAfterMs and is closed — never silently dropped.
	// Default 64.
	AcceptQueue int

	// MaxRuns caps concurrent runs (tenants); 0 means unlimited.
	MaxRuns int

	// MaxRunSessions caps concurrent sessions per run; 0 means unlimited.
	MaxRunSessions int

	// RetryAfterMs is the backoff hint stamped into vSE1 refusals.
	// Default 50.
	RetryAfterMs uint32

	// IdleWorker is how long a worker above MinWorkers waits for a
	// connection before retiring. Default 200ms.
	IdleWorker time.Duration

	// HelloTimeout bounds how long an accepted connection may dawdle
	// before completing its vSS1 hello. Default 5s.
	HelloTimeout time.Duration

	// WriteTimeout is the deadline armed before every ack-bearing flush
	// (session ack, frame acks, refusals): a peer that stops reading
	// cannot pin a worker once the socket buffers fill. Default 5s;
	// negative disables.
	WriteTimeout time.Duration

	// IdleSession, when positive, is the dead-peer reaper: an admitted
	// session that does not complete an envelope (data frame or
	// heartbeat) within this window is closed and counted in
	// SessionsReaped. Slow-loris senders trip it too — the window bounds
	// the whole envelope, not the gap between bytes. 0 disables.
	IdleSession time.Duration

	// Shards is the shard count the default tenant factory passes to
	// server.NewSharded. Default 1.
	Shards int

	// tuneConn, when set, runs on every accepted connection before the
	// handshake — the in-package test seam for shrinking socket buffers
	// so deadline behavior is reachable without megabytes of traffic.
	tuneConn func(net.Conn)

	// NewServer, when set, builds the analysis server for a new run ID —
	// the hook through which tests attach durability or obs to specific
	// tenants, and through which the facade hands the service its own
	// pre-built server. When nil, tenants get server.NewSharded(Shards).
	NewServer func(runID string) *server.Server
}

func (c *Config) fillDefaults() {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		if c.MaxWorkers <= 0 {
			c.MaxWorkers = 8
		}
		if c.MaxWorkers < c.MinWorkers {
			c.MaxWorkers = c.MinWorkers
		}
	}
	if c.AcceptQueue <= 0 {
		c.AcceptQueue = 64
	}
	if c.RetryAfterMs == 0 {
		c.RetryAfterMs = 50
	}
	if c.IdleWorker <= 0 {
		c.IdleWorker = 200 * time.Millisecond
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Stats is a point-in-time snapshot of service counters; every refused
// connection shows up in exactly one Refused* bucket, so
// Accepted == handled + queued + sum(Refused*) at all times — the
// "never a silent drop" ledger.
type Stats struct {
	Accepted         int64 // connections the listener accepted
	Shed             int64 // refused with vSE1 busy (accept queue full)
	RefusedSessions  int64 // refused: per-run session cap
	RefusedRuns      int64 // refused: run (tenant) cap
	RefusedBadHello  int64 // refused: malformed/unsupported hello
	RefusedShutdown  int64 // refused: service closing
	Sessions         int64 // sessions ever admitted
	SessionsOpen     int64 // sessions currently streaming
	Runs             int64 // live tenants
	Workers          int64 // current pool size
	PeakWorkers      int64 // high-water pool size
	FramesIn         int64 // data envelopes delivered to tenant servers
	FramesRejected   int64 // data envelopes acked with frameAckReject
	FramesDown       int64 // data envelopes acked with frameAckDown
	SessionsReaped   int64 // sessions closed by the dead-peer defense (idle reaper or ack-write timeout)
	CorruptEnvelopes int64 // connections killed by an envelope CRC mismatch
}

type tenant struct {
	srv      *server.Server
	sessions int
}

// Service is the networked multi-tenant analysis server: one TCP listener
// multiplexing many runs, each run owning its own sharded server (and
// whatever durability/snapshot machinery the tenant factory attached).
type Service struct {
	cfg Config
	ln  net.Listener

	queue      chan net.Conn
	acceptDone chan struct{}
	closed     atomic.Bool
	wg         sync.WaitGroup // workers

	mu      sync.Mutex
	runs    map[string]*tenant
	conns   map[net.Conn]struct{}
	workers int
	peak    int64

	accepted        atomic.Int64
	shed            atomic.Int64
	refusedSessions atomic.Int64
	refusedRuns     atomic.Int64
	refusedBadHello atomic.Int64
	refusedShutdown atomic.Int64
	sessions        atomic.Int64
	sessionsOpen    atomic.Int64
	framesIn        atomic.Int64
	framesRejected  atomic.Int64
	framesDown      atomic.Int64
	sessionsReaped  atomic.Int64
	corruptEnv      atomic.Int64

	// met is swapped atomically so SetObs may race the accept loop; the
	// zero-value pointer target is all-nil handles, which are no-ops.
	met atomic.Pointer[obsHandles]
}

// obsHandles bundles the metric handles mirrored into an obs registry.
// Every field is nil-safe, so a zero obsHandles is a valid no-op set.
type obsHandles struct {
	accepted *obs.Counter
	shed     *obs.Counter
	refused  *obs.Counter
	frames   *obs.Counter
	reaped   *obs.Counter
	sessions *obs.Gauge
	runs     *obs.Gauge
	workers  *obs.Gauge
}

// Listen binds addr (e.g. "127.0.0.1:0"), starts the accept loop and the
// minimum worker pool, and returns the running service.
func Listen(addr string, cfg Config) (*Service, error) {
	cfg.fillDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsrv: listen %s: %w", addr, err)
	}
	s := &Service{
		cfg:        cfg,
		ln:         ln,
		queue:      make(chan net.Conn, cfg.AcceptQueue),
		acceptDone: make(chan struct{}),
		runs:       make(map[string]*tenant),
		conns:      make(map[net.Conn]struct{}),
	}
	for i := 0; i < cfg.MinWorkers; i++ {
		s.spawnWorkerLocked()
	}
	go s.acceptLoop()
	return s, nil
}

// Addr is the listener's bound address (useful with ":0").
func (s *Service) Addr() net.Addr { return s.ln.Addr() }

// SetObs mirrors service counters into an observability registry so they
// surface in /metrics and /status alongside the server's own.
func (s *Service) SetObs(o *obs.Obs) {
	s.met.Store(&obsHandles{
		accepted: o.Counter("net_accepted_total"),
		shed:     o.Counter("net_shed_total"),
		refused:  o.Counter("net_refused_total"),
		frames:   o.Counter("net_frames_total"),
		reaped:   o.Counter("net_sessions_reaped_total"),
		sessions: o.Gauge("net_sessions_open"),
		runs:     o.Gauge("net_runs"),
		workers:  o.Gauge("net_workers"),
	})
}

// metrics returns the current handle set, never nil.
func (s *Service) metrics() *obsHandles {
	if m := s.met.Load(); m != nil {
		return m
	}
	return &obsHandles{}
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	workers := int64(s.workers)
	peak := s.peak
	runs := int64(len(s.runs))
	s.mu.Unlock()
	return Stats{
		Accepted:         s.accepted.Load(),
		Shed:             s.shed.Load(),
		RefusedSessions:  s.refusedSessions.Load(),
		RefusedRuns:      s.refusedRuns.Load(),
		RefusedBadHello:  s.refusedBadHello.Load(),
		RefusedShutdown:  s.refusedShutdown.Load(),
		Sessions:         s.sessions.Load(),
		SessionsOpen:     s.sessionsOpen.Load(),
		Runs:             runs,
		Workers:          workers,
		PeakWorkers:      peak,
		FramesIn:         s.framesIn.Load(),
		FramesRejected:   s.framesRejected.Load(),
		FramesDown:       s.framesDown.Load(),
		SessionsReaped:   s.sessionsReaped.Load(),
		CorruptEnvelopes: s.corruptEnv.Load(),
	}
}

// StatusMap renders the stats for an obs /status provider.
func (s *Service) StatusMap() map[string]any {
	st := s.Stats()
	return map[string]any{
		"accepted":          st.Accepted,
		"shed":              st.Shed,
		"refused_sessions":  st.RefusedSessions,
		"refused_runs":      st.RefusedRuns,
		"refused_badhello":  st.RefusedBadHello,
		"refused_shutdown":  st.RefusedShutdown,
		"sessions":          st.Sessions,
		"sessions_open":     st.SessionsOpen,
		"runs":              st.Runs,
		"workers":           st.Workers,
		"peak_workers":      st.PeakWorkers,
		"frames_in":         st.FramesIn,
		"frames_rejected":   st.FramesRejected,
		"frames_down":       st.FramesDown,
		"sessions_reaped":   st.SessionsReaped,
		"corrupt_envelopes": st.CorruptEnvelopes,
	}
}

// Tenant returns the analysis server owned by runID, or nil if that run
// has never opened a session.
func (s *Service) Tenant(runID string) *server.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.runs[runID]; t != nil {
		return t.srv
	}
	return nil
}

// RunIDs lists live tenants, sorted.
func (s *Service) RunIDs() []string {
	s.mu.Lock()
	ids := make([]string, 0, len(s.runs))
	for id := range s.runs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// Close stops the listener, refuses everything still queued (vSE1
// shutdown — even at teardown nothing is silently dropped), closes active
// session connections, and waits for the pool to drain.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	<-s.acceptDone
	// The accept loop has exited, so nothing enqueues after this drain.
	for {
		select {
		case c := <-s.queue:
			s.refusedShutdown.Add(1)
			s.metrics().refused.Inc()
			s.writeRefuse(c, RefuseShutdown)
		default:
			close(s.queue)
			goto drained
		}
	}
drained:
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Service) acceptLoop() {
	defer close(s.acceptDone)
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.accepted.Add(1)
		s.metrics().accepted.Inc()
		select {
		case s.queue <- c:
			s.maybeGrow()
		default:
			// Load shed: the queue is full. Tell the client explicitly
			// and hint a backoff; the write happens off the accept loop
			// so a slow refused peer cannot stall admission.
			s.shed.Add(1)
			s.metrics().shed.Inc()
			go s.writeRefuse(c, RefuseBusy)
		}
	}
}

// maybeGrow adds a worker while there is backlog and headroom.
func (s *Service) maybeGrow() {
	if len(s.queue) == 0 {
		return
	}
	s.mu.Lock()
	if s.workers < s.cfg.MaxWorkers {
		s.spawnWorkerLocked()
	}
	s.mu.Unlock()
}

func (s *Service) spawnWorkerLocked() {
	s.workers++
	if int64(s.workers) > s.peak {
		s.peak = int64(s.workers)
	}
	s.metrics().workers.Set(float64(s.workers))
	s.wg.Add(1)
	go s.worker()
}

// tryRetire removes this worker if the pool is above its floor.
func (s *Service) tryRetire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workers <= s.cfg.MinWorkers {
		return false
	}
	s.workers--
	s.metrics().workers.Set(float64(s.workers))
	return true
}

func (s *Service) worker() {
	defer s.wg.Done()
	idle := time.NewTimer(s.cfg.IdleWorker)
	defer idle.Stop()
	for {
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(s.cfg.IdleWorker)
		select {
		case c, ok := <-s.queue:
			if !ok {
				s.mu.Lock()
				s.workers--
				s.metrics().workers.Set(float64(s.workers))
				s.mu.Unlock()
				return
			}
			s.handleConn(c)
		case <-idle.C:
			if s.tryRetire() {
				return
			}
		}
	}
}

// writeRefuse sends a vSE1 and closes the connection. Best effort under a
// short deadline: the refusal is a courtesy, the close is the guarantee.
func (s *Service) writeRefuse(c net.Conn, code uint16) {
	defer c.Close()
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	w := bufio.NewWriter(c)
	payload := AppendRefuse(nil, Refuse{Version: ProtocolVersion, Code: code, RetryAfterMs: s.cfg.RetryAfterMs})
	if err := writeEnvelope(w, payload); err == nil {
		_ = w.Flush()
	}
}

// admit applies tenancy admission control for a parsed hello. It returns
// the tenant (created on first contact) or a refusal code.
func (s *Service) admit(h Hello) (*tenant, uint16, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, existed := s.runs[h.RunID]
	if !existed {
		if s.cfg.MaxRuns > 0 && len(s.runs) >= s.cfg.MaxRuns {
			return nil, RefuseRuns, false
		}
		var srv *server.Server
		if s.cfg.NewServer != nil {
			srv = s.cfg.NewServer(h.RunID)
		} else {
			srv = server.NewSharded(s.cfg.Shards)
		}
		t = &tenant{srv: srv}
		s.runs[h.RunID] = t
		s.metrics().runs.Set(float64(len(s.runs)))
	}
	if s.cfg.MaxRunSessions > 0 && t.sessions >= s.cfg.MaxRunSessions {
		return nil, RefuseRunSessions, false
	}
	t.sessions++
	return t, 0, existed
}

func (s *Service) releaseSession(runID string) {
	s.mu.Lock()
	if t := s.runs[runID]; t != nil {
		t.sessions--
	}
	s.mu.Unlock()
}

// handleConn runs one session: hello, admission, then the frame/ack loop
// until the peer hangs up or the service closes.
func (s *Service) handleConn(c net.Conn) {
	defer c.Close()
	if s.cfg.tuneConn != nil {
		s.cfg.tuneConn(c)
	}
	if s.closed.Load() {
		s.refusedShutdown.Add(1)
		s.metrics().refused.Inc()
		s.writeRefuse(c, RefuseShutdown)
		return
	}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()

	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 64<<10)

	_ = c.SetReadDeadline(time.Now().Add(s.cfg.HelloTimeout))
	payload, _, err := readEnvelope(r, nil, helloHeaderSize+MaxRunIDLen)
	if err != nil || !isHello(payload) {
		s.refusedBadHello.Add(1)
		s.metrics().refused.Inc()
		s.writeRefuse(c, RefuseBadHello)
		return
	}
	h, err := ParseHello(payload)
	if err != nil {
		s.refusedBadHello.Add(1)
		s.metrics().refused.Inc()
		s.writeRefuse(c, RefuseBadHello)
		return
	}
	_ = c.SetReadDeadline(time.Time{})

	t, code, existed := s.admit(h)
	if t == nil {
		switch code {
		case RefuseRuns:
			s.refusedRuns.Add(1)
		case RefuseRunSessions:
			s.refusedSessions.Add(1)
		}
		s.metrics().refused.Inc()
		s.writeRefuse(c, code)
		return
	}
	defer s.releaseSession(h.RunID)

	s.sessions.Add(1)
	s.sessionsOpen.Add(1)
	s.metrics().sessions.Set(float64(s.sessionsOpen.Load()))
	defer func() {
		s.sessionsOpen.Add(-1)
		s.metrics().sessions.Set(float64(s.sessionsOpen.Load()))
	}()

	ack := SessionAck{Version: ProtocolVersion, LSN: t.srv.DurabilityStats().LSN}
	if existed {
		ack.Flags |= AckFlagResumed
	}
	s.armWrite(c)
	if err := writeEnvelope(w, AppendSessionAck(nil, ack)); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		s.countWriteTimeout(err)
		return
	}

	// Frame/ack loop. Acks are written in order and flushed once the read
	// side has no buffered input — pipelined senders get batched acks,
	// synchronous senders get an immediate one. A byte threshold also
	// forces the flush so a sender that never lets the read buffer drain
	// still sees acks early enough to keep its pipeline window open
	// (otherwise the two sides fall into half-duplex lock-step).
	//
	// Two dead-peer defenses guard the loop. The read side is the idle
	// reaper: with IdleSession set, each envelope — heartbeats included —
	// must complete within the window, so an idle peer, a half-open
	// connection, or a slow-loris byte-dribbler all get reaped instead of
	// pinning this worker. The write side is the ack deadline inside
	// writeAck. An envelope CRC mismatch means the byte stream itself is
	// corrupt: kill the connection and let reconnect + resume-LSN
	// redeliver (a per-frame reject would desynchronize frame/ack order).
	var buf []byte
	ackScratch := []byte{0}
	for {
		if s.cfg.IdleSession > 0 {
			_ = c.SetReadDeadline(time.Now().Add(s.cfg.IdleSession))
		}
		payload, hdr, err := readEnvelope(r, buf, MaxEnvelopeBytes)
		if errors.Is(err, ErrEnvelopeTooLarge) {
			if derr := drainEnvelope(r, hdr); derr != nil {
				if errors.Is(derr, ErrEnvelopeCorrupt) {
					s.corruptEnv.Add(1)
				}
				return
			}
			s.framesRejected.Add(1)
			ackScratch[0] = frameAckReject
			if s.writeAck(c, w, r, ackScratch) != nil {
				return
			}
			continue
		}
		if err != nil {
			if errors.Is(err, ErrEnvelopeCorrupt) {
				s.corruptEnv.Add(1)
			} else if s.cfg.IdleSession > 0 && isTimeout(err) {
				s.sessionsReaped.Add(1)
				s.metrics().reaped.Inc()
			}
			return
		}
		buf = payload[:0]
		status := byte(frameAckOK)
		switch rerr := t.srv.Receive(payload); {
		case rerr == nil:
			s.framesIn.Add(1)
			s.metrics().frames.Inc()
		case errors.Is(rerr, server.ErrServerDown):
			s.framesDown.Add(1)
			status = frameAckDown
		default:
			s.framesRejected.Add(1)
			status = frameAckReject
		}
		ackScratch[0] = status
		if s.writeAck(c, w, r, ackScratch) != nil {
			return
		}
	}
}

// ackFlushBytes is the buffered-ack threshold that forces a flush even
// while more frames are still queued on the read side. Liveness does not
// depend on it — the reader-dry check in writeAck flushes whenever the
// inbound stream pauses, whatever the client's window — so the threshold
// is purely a syscall batching knob for the firehose case.
const ackFlushBytes = 1024

// armWrite arms the configured write deadline on c.
func (s *Service) armWrite(c net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		_ = c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// countWriteTimeout books a flush failure as a reaped session when it was
// the write deadline firing — a peer that stopped reading its acks.
func (s *Service) countWriteTimeout(err error) {
	if err != nil && isTimeout(err) {
		s.sessionsReaped.Add(1)
		s.metrics().reaped.Inc()
	}
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// writeAck queues a 1-byte ack envelope and flushes if the reader is dry
// or enough acks have accumulated. Every flush runs under the write
// deadline: a stalled reader trips it instead of pinning the worker once
// the socket buffers fill.
func (s *Service) writeAck(c net.Conn, w *bufio.Writer, r *bufio.Reader, status []byte) error {
	if err := writeEnvelope(w, status); err != nil {
		return err
	}
	if r.Buffered() == 0 || w.Buffered() >= ackFlushBytes {
		s.armWrite(c)
		err := w.Flush()
		s.countWriteTimeout(err)
		return err
	}
	return nil
}
