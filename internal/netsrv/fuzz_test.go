package netsrv

import (
	"bytes"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/server"
)

// FuzzSession hammers the session-layer parsers with arbitrary bytes:
// hostile versions, run-ID lengths and charsets, resume LSNs, truncations,
// and vS-magic confusion (vSF1/vSF2/vSH1 data frames fed to the handshake
// parser). Two properties must hold for every input:
//
//  1. No parser panics or over-allocates — hostile lengths are bounded
//     before use.
//  2. Accept ⇒ byte-exact re-encode: any payload a parser accepts must
//     re-serialize to exactly the input bytes. This pins the encodings as
//     canonical — there is no second byte string for the same Hello, so
//     CRC checks, dedup, and cross-version hashing stay meaningful.
func FuzzSession(f *testing.F) {
	// Valid frames of each session type.
	f.Add(AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "run-a", Rank: 3, ResumeLSN: 99}))
	f.Add(AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "x", Rank: 0}))
	f.Add(AppendSessionAck(nil, SessionAck{Version: ProtocolVersion, Flags: AckFlagResumed, LSN: 12345}))
	f.Add(AppendRefuse(nil, Refuse{Version: ProtocolVersion, Code: RefuseBusy, RetryAfterMs: 50}))
	// Truncations and hostile mutations.
	hello := AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "truncated", Rank: 1})
	f.Add(hello[:helloHeaderSize-1])
	f.Add(hello[:len(hello)-3])
	long := AppendHello(nil, Hello{Version: ProtocolVersion, RunID: string(bytes.Repeat([]byte{'z'}, MaxRunIDLen)), Rank: server.MaxFrameRank})
	f.Add(long)
	// Magic confusion: real vSF1 and vSH1 payloads must be rejected by the
	// session parsers, not misread.
	f.Add(server.AppendFrame(nil, server.FrameHeader{Rank: 2, Seq: 1, CumRecords: 1},
		[]detect.SliceRecord{{Sensor: 1, Rank: 2, Count: 1, AvgNs: 10}}))
	f.Add(server.AppendHeartbeat(nil, 4, 1e9, 5e9))

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := ParseHello(data); err == nil {
			if h.Version != ProtocolVersion {
				t.Fatalf("accepted hello with version %d", h.Version)
			}
			if n := len(h.RunID); n == 0 || n > MaxRunIDLen {
				t.Fatalf("accepted hello with run-ID length %d", n)
			}
			if h.Rank < 0 || h.Rank > server.MaxFrameRank {
				t.Fatalf("accepted hello with rank %d", h.Rank)
			}
			if re := AppendHello(nil, h); !bytes.Equal(re, data) {
				t.Fatalf("hello re-encode differs:\n in: %x\nout: %x", data, re)
			}
		}
		if a, err := ParseSessionAck(data); err == nil {
			if re := AppendSessionAck(nil, a); !bytes.Equal(re, data) {
				t.Fatalf("session-ack re-encode differs:\n in: %x\nout: %x", data, re)
			}
		}
		if r, err := ParseRefuse(data); err == nil {
			if re := AppendRefuse(nil, r); !bytes.Equal(re, data) {
				t.Fatalf("refuse re-encode differs:\n in: %x\nout: %x", data, re)
			}
		}
		// A payload can satisfy at most one vS* parser: the magics are
		// distinct, so cross-acceptance would mean a parser ignored them.
		accepted := 0
		if _, err := ParseHello(data); err == nil {
			accepted++
		}
		if _, err := ParseSessionAck(data); err == nil {
			accepted++
		}
		if _, err := ParseRefuse(data); err == nil {
			accepted++
		}
		if _, err := server.ParseFrame(data); err == nil {
			accepted++
		}
		if accepted > 1 {
			t.Fatalf("%d parsers accepted the same %d-byte payload", accepted, len(data))
		}
	})
}
