package netsrv

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/server"
)

// FuzzSession hammers the session-layer parsers with arbitrary bytes:
// hostile versions, run-ID lengths and charsets, resume LSNs, truncations,
// and vS-magic confusion (vSF1/vSF2/vSH1 data frames fed to the handshake
// parser). Two properties must hold for every input:
//
//  1. No parser panics or over-allocates — hostile lengths are bounded
//     before use.
//  2. Accept ⇒ byte-exact re-encode: any payload a parser accepts must
//     re-serialize to exactly the input bytes. This pins the encodings as
//     canonical — there is no second byte string for the same Hello, so
//     CRC checks, dedup, and cross-version hashing stay meaningful.
func FuzzSession(f *testing.F) {
	// Valid frames of each session type.
	f.Add(AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "run-a", Rank: 3, ResumeLSN: 99}))
	f.Add(AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "x", Rank: 0}))
	f.Add(AppendSessionAck(nil, SessionAck{Version: ProtocolVersion, Flags: AckFlagResumed, LSN: 12345}))
	f.Add(AppendRefuse(nil, Refuse{Version: ProtocolVersion, Code: RefuseBusy, RetryAfterMs: 50}))
	// Truncations and hostile mutations.
	hello := AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "truncated", Rank: 1})
	f.Add(hello[:helloHeaderSize-1])
	f.Add(hello[:len(hello)-3])
	long := AppendHello(nil, Hello{Version: ProtocolVersion, RunID: string(bytes.Repeat([]byte{'z'}, MaxRunIDLen)), Rank: server.MaxFrameRank})
	f.Add(long)
	// Magic confusion: real vSF1 and vSH1 payloads must be rejected by the
	// session parsers, not misread.
	f.Add(server.AppendFrame(nil, server.FrameHeader{Rank: 2, Seq: 1, CumRecords: 1},
		[]detect.SliceRecord{{Sensor: 1, Rank: 2, Count: 1, AvgNs: 10}}))
	f.Add(server.AppendHeartbeat(nil, 4, 1e9, 5e9))
	// Envelope streams: whole, truncated mid-payload, CRC-corrupted, and a
	// corrupted length prefix carving into the next envelope's bytes.
	env := encodeEnvelope(nil, AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "env", Rank: 1}))
	env = encodeEnvelope(env, AppendSessionAck(nil, SessionAck{Version: ProtocolVersion, LSN: 7}))
	f.Add(env)
	f.Add(env[:len(env)-5])
	crcFlip := append([]byte(nil), env...)
	crcFlip[5] ^= 0x10 // CRC field of the first envelope
	f.Add(crcFlip)
	bitFlip := append([]byte(nil), env...)
	bitFlip[envHeaderSize+2] ^= 0x01 // payload byte: CRC must catch it
	f.Add(bitFlip)
	lenFlip := append([]byte(nil), env...)
	lenFlip[0] ^= 0x04 // length prefix: mis-carves the next payload
	f.Add(lenFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := ParseHello(data); err == nil {
			if h.Version != ProtocolVersion {
				t.Fatalf("accepted hello with version %d", h.Version)
			}
			if n := len(h.RunID); n == 0 || n > MaxRunIDLen {
				t.Fatalf("accepted hello with run-ID length %d", n)
			}
			if h.Rank < 0 || h.Rank > server.MaxFrameRank {
				t.Fatalf("accepted hello with rank %d", h.Rank)
			}
			if re := AppendHello(nil, h); !bytes.Equal(re, data) {
				t.Fatalf("hello re-encode differs:\n in: %x\nout: %x", data, re)
			}
		}
		if a, err := ParseSessionAck(data); err == nil {
			if re := AppendSessionAck(nil, a); !bytes.Equal(re, data) {
				t.Fatalf("session-ack re-encode differs:\n in: %x\nout: %x", data, re)
			}
		}
		if r, err := ParseRefuse(data); err == nil {
			if re := AppendRefuse(nil, r); !bytes.Equal(re, data) {
				t.Fatalf("refuse re-encode differs:\n in: %x\nout: %x", data, re)
			}
		}
		// A payload can satisfy at most one vS* parser: the magics are
		// distinct, so cross-acceptance would mean a parser ignored them.
		accepted := 0
		if _, err := ParseHello(data); err == nil {
			accepted++
		}
		if _, err := ParseSessionAck(data); err == nil {
			accepted++
		}
		if _, err := ParseRefuse(data); err == nil {
			accepted++
		}
		if _, err := server.ParseFrame(data); err == nil {
			accepted++
		}
		if accepted > 1 {
			t.Fatalf("%d parsers accepted the same %d-byte payload", accepted, len(data))
		}
		// Envelope-stream property: decode data as a CRC-framed stream.
		// Every accepted envelope must re-encode to exactly the bytes
		// consumed (canonical framing), and a corrupted or truncated
		// stream must stop cleanly — no panic, no over-allocation past
		// the declared cap.
		r := bufio.NewReader(bytes.NewReader(data))
		off := 0
		for {
			payload, _, err := readEnvelope(r, nil, 1<<20)
			if err != nil {
				break
			}
			n := envHeaderSize + len(payload)
			if off+n > len(data) {
				t.Fatalf("envelope at %d claims %d bytes past input end", off, n)
			}
			if re := encodeEnvelope(nil, payload); !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("envelope re-encode differs at offset %d", off)
			}
			off += n
		}
	})
}

// encodeEnvelope appends the wire envelope (length, CRC, payload) for
// payload to dst — the test-side mirror of writeEnvelope.
func encodeEnvelope(dst, payload []byte) []byte {
	var hdr [envHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}
