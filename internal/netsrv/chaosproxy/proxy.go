// Package chaosproxy is a seeded in-process TCP proxy that attacks the
// byte stream between a netsrv client and service: connection resets,
// blackhole partitions, read/write stalls, one-bit wire corruption, split
// and coalesced writes, and half-open closes. It injects faults at the
// layer *below* transport.FaultPlan's frame dice — the socket itself — so
// the session layer's envelope CRC, per-operation deadlines, and
// resume-LSN reconnects can be proven exactly-once under conditions the
// transport layer never sees.
//
// Determinism: byte-level decisions (where to flip a bit, how to shred a
// write, when to trip a countdown) come from a per-connection PRNG seeded
// from Plan.Seed and the connection index, so a trial's fault pattern is
// reproducible modulo goroutine scheduling. Time-level windows
// (partition) run on wall clock; the conformance suites do not depend on
// when faults land, only that the final state is exact.
package chaosproxy

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Plan is the seeded fault plan. The zero value forwards faithfully.
type Plan struct {
	// Seed drives every per-connection random decision.
	Seed int64

	// SplitWrites re-chunks some forwarded buffers into runt writes
	// (1..16 bytes) so no receiver can assume envelope boundaries align
	// with read boundaries.
	SplitWrites bool

	// CoalesceWrites holds some forwarded buffers briefly to merge them
	// with the next read — the opposite framing attack.
	CoalesceWrites bool

	// CorruptBit is the per-forwarded-chunk probability of flipping one
	// random bit in flight. MaxFlips bounds the total (0 = unlimited).
	CorruptBit float64
	MaxFlips   int64

	// ResetEvery RSTs a connection (SO_LINGER 0 on both legs) after
	// roughly this many forwarded bytes. 0 disables.
	ResetEvery int64

	// StallEvery pauses a connection's forwarding for Stall after roughly
	// this many bytes — the read/write stall that must trip the
	// endpoints' deadlines, not hang them. 0 disables.
	StallEvery int64
	Stall      time.Duration

	// HalfOpenEvery silently stops forwarding a connection after roughly
	// this many bytes while keeping both sockets open: the classic
	// half-open peer. Bytes are still read and discarded so neither
	// endpoint blocks on a full send buffer — they must detect the
	// silence themselves. 0 disables.
	HalfOpenEvery int64

	// PartitionAfter/Partition schedule one global blackhole window:
	// PartitionAfter after New, every live connection is severed and new
	// connections are accepted but left unanswered for Partition.
	PartitionAfter time.Duration
	Partition      time.Duration
}

// Stats counts injected faults.
type Stats struct {
	Conns     int64
	Bytes     int64
	Resets    int64
	Stalls    int64
	BitFlips  int64
	HalfOpens int64
	Partition bool // the partition window has opened
}

// Proxy is a running chaos proxy. Dial the address returned by Addr
// instead of the real service.
type Proxy struct {
	ln     net.Listener
	target string
	plan   Plan
	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	held  []net.Conn // accepted during partition, never answered

	connSeq      atomic.Int64
	bytes        atomic.Int64
	resets       atomic.Int64
	stalls       atomic.Int64
	flips        atomic.Int64
	halfOpens    atomic.Int64
	partitioned  atomic.Bool
	partitionHit atomic.Bool
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, plan Plan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		plan:   plan,
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	if plan.Partition > 0 {
		p.wg.Add(1)
		go p.partitionWindow()
	}
	return p, nil
}

// Addr is the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:     p.connSeq.Load(),
		Bytes:     p.bytes.Load(),
		Resets:    p.resets.Load(),
		Stalls:    p.stalls.Load(),
		BitFlips:  p.flips.Load(),
		HalfOpens: p.halfOpens.Load(),
		Partition: p.partitionHit.Load(),
	}
}

// Close stops accepting, severs every connection, and waits for the
// pumps to exit.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := p.ln.Close()
	close(p.done)
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	for _, c := range p.held {
		_ = c.Close()
	}
	p.held = nil
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.partitioned.Load() {
			// Blackhole: the connect succeeds (the kernel completed the
			// handshake anyway) but nothing ever answers — the client's
			// handshake deadline must fire.
			p.mu.Lock()
			if p.closed.Load() {
				p.mu.Unlock()
				_ = c.Close()
				continue
			}
			p.held = append(p.held, c)
			p.mu.Unlock()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			_ = c.Close()
			continue
		}
		id := p.connSeq.Add(1)
		p.track(c)
		p.track(up)
		st := newConnState(p.plan, id)
		p.wg.Add(2)
		go p.pump(up, c, st) // client -> server
		go p.pump(c, up, st) // server -> client
	}
}

// partitionWindow severs the world once: after PartitionAfter, every live
// connection dies and new ones are held unanswered for Partition.
func (p *Proxy) partitionWindow() {
	defer p.wg.Done()
	select {
	case <-time.After(p.plan.PartitionAfter):
	case <-p.done:
		return
	}
	p.partitionHit.Store(true)
	p.partitioned.Store(true)
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	select {
	case <-time.After(p.plan.Partition):
	case <-p.done:
		return
	}
	p.partitioned.Store(false)
	p.mu.Lock()
	held := p.held
	p.held = nil
	p.mu.Unlock()
	for _, c := range held {
		_ = c.Close()
	}
}

// connState is the fault bookkeeping shared by a connection's two pumps.
type connState struct {
	mu          sync.Mutex
	rng         *rand.Rand
	resetIn     int64 // bytes until RST (0 = off)
	stallIn     int64 // bytes until stall (0 = off)
	halfIn      int64 // bytes until half-open (0 = off)
	halfOpen    bool
	halfCounted bool
	plan        Plan
}

// countHalfOpen reports true exactly once per connection, for the stats.
func (s *connState) countHalfOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.halfCounted {
		return false
	}
	s.halfCounted = true
	return true
}

func newConnState(plan Plan, id int64) *connState {
	return &connState{
		rng:     rand.New(rand.NewSource(plan.Seed*1000003 + id)),
		resetIn: plan.ResetEvery,
		stallIn: plan.StallEvery,
		halfIn:  plan.HalfOpenEvery,
		plan:    plan,
	}
}

// verdicts from connState.account.
const (
	actForward = iota
	actReset
	actStall
	actHalfOpen
)

// account charges n forwarded bytes against the countdowns and picks the
// fault (if any) this chunk trips. Countdowns are shared by both
// directions, so "every N bytes" means N bytes of total traffic.
func (s *connState) account(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.halfOpen {
		return actHalfOpen
	}
	if s.resetIn > 0 {
		if s.resetIn -= int64(n); s.resetIn <= 0 {
			s.resetIn = s.plan.ResetEvery
			return actReset
		}
	}
	if s.halfIn > 0 {
		if s.halfIn -= int64(n); s.halfIn <= 0 {
			s.halfOpen = true
			return actHalfOpen
		}
	}
	if s.stallIn > 0 {
		if s.stallIn -= int64(n); s.stallIn <= 0 {
			s.stallIn = s.plan.StallEvery
			return actStall
		}
	}
	return actForward
}

// rand runs f under the state lock so both pumps share one PRNG stream.
func (s *connState) rand(f func(rng *rand.Rand) int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return f(s.rng)
}

// rst closes a leg with SO_LINGER 0 so the peer sees ECONNRESET, not a
// graceful FIN.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// pump forwards src to dst with faults. It owns closing both legs on
// exit except in the half-open state, where sockets stay open and bytes
// are swallowed until the endpoints give up.
func (p *Proxy) pump(dst, src net.Conn, st *connState) {
	defer p.wg.Done()
	buf := make([]byte, 16<<10)
	defer func() {
		p.untrack(src)
		p.untrack(dst)
	}()
	closeBoth := func() {
		_ = src.Close()
		_ = dst.Close()
	}
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.bytes.Add(int64(n))
			switch st.account(n) {
			case actReset:
				p.resets.Add(1)
				rst(src)
				rst(dst)
				return
			case actHalfOpen:
				if st.countHalfOpen() {
					p.halfOpens.Add(1)
				}
				// Swallow this chunk and everything after it; keep
				// reading so neither endpoint blocks on its send buffer.
				p.swallow(src)
				_ = src.Close()
				_ = dst.Close()
				return
			case actStall:
				p.stalls.Add(1)
				select {
				case <-time.After(st.plan.Stall):
				case <-p.done:
					closeBoth()
					return
				}
			}
			b := buf[:n]
			if st.plan.CorruptBit > 0 &&
				(st.plan.MaxFlips == 0 || p.flips.Load() < st.plan.MaxFlips) &&
				st.rand(func(rng *rand.Rand) int64 {
					if rng.Float64() < st.plan.CorruptBit {
						return 1
					}
					return 0
				}) == 1 {
				bit := st.rand(func(rng *rand.Rand) int64 { return rng.Int63n(int64(n) * 8) })
				b[bit/8] ^= 1 << (bit % 8)
				p.flips.Add(1)
			}
			if werr := p.forward(dst, b, st); werr != nil {
				closeBoth()
				return
			}
		}
		if err != nil {
			closeBoth()
			return
		}
	}
}

// swallow keeps reading and discarding from src until it dies or the
// proxy closes — the half-open sink.
func (p *Proxy) swallow(src net.Conn) {
	buf := make([]byte, 16<<10)
	for {
		_ = src.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		_, err := src.Read(buf)
		select {
		case <-p.done:
			return
		default:
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}

// forward writes b to dst, sometimes shredded into runt writes and
// sometimes after a short coalescing delay.
func (p *Proxy) forward(dst net.Conn, b []byte, st *connState) error {
	if st.plan.CoalesceWrites && st.rand(func(rng *rand.Rand) int64 { return rng.Int63n(4) }) == 0 {
		// Hold briefly so the kernel merges this write with the next —
		// receivers must tolerate arbitrary read boundaries.
		select {
		case <-time.After(time.Duration(st.rand(func(rng *rand.Rand) int64 { return rng.Int63n(500) })) * time.Microsecond):
		case <-p.done:
		}
	}
	if st.plan.SplitWrites && st.rand(func(rng *rand.Rand) int64 { return rng.Int63n(2) }) == 0 {
		for len(b) > 0 {
			n := int(st.rand(func(rng *rand.Rand) int64 { return 1 + rng.Int63n(16) }))
			if n > len(b) {
				n = len(b)
			}
			if _, err := dst.Write(b[:n]); err != nil {
				return err
			}
			b = b[n:]
		}
		return nil
	}
	_, err := dst.Write(b)
	return err
}
