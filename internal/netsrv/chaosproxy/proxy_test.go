package chaosproxy

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				wg.Wait()
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				_, _ = io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// A zero plan must forward faithfully: every byte comes back unmodified
// and only the traffic counters move.
func TestFaithfulForwarding(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	msg := bytes.Repeat([]byte("faithful-wire-"), 512)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("zero-plan proxy modified the stream")
	}
	st := p.Stats()
	if st.Conns != 1 || st.Bytes < int64(len(msg)) {
		t.Fatalf("traffic counters off: %+v", st)
	}
	if st.Resets+st.Stalls+st.BitFlips+st.HalfOpens != 0 || st.Partition {
		t.Fatalf("zero plan injected faults: %+v", st)
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// ResetEvery must surface as a connection error on the endpoint, not a
// clean EOF-forever hang, and be counted.
func TestResetTripsConnection(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{Seed: 1, ResetEvery: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	chunk := make([]byte, 1024)
	deadline := time.Now().Add(5 * time.Second)
	broken := false
	for time.Now().Before(deadline) {
		if _, err := c.Write(chunk); err != nil {
			broken = true
			break
		}
		_ = c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := c.Read(chunk); err != nil {
			if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
				broken = true
				break
			}
		}
	}
	if !broken {
		t.Fatal("connection survived past the reset threshold")
	}
	if st := p.Stats(); st.Resets < 1 {
		t.Fatalf("reset not counted: %+v", st)
	}
}

// Stalls pause forwarding without killing the connection; split and
// coalesced writes plus a capped bit flip attack the payload. The echo
// must come back with exactly MaxFlips bits changed.
func TestStallSplitCoalesceAndCappedFlip(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{
		Seed:           7,
		SplitWrites:    true,
		CoalesceWrites: true,
		CorruptBit:     1.0,
		MaxFlips:       1,
		StallEvery:     2 << 10,
		Stall:          5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	msg := bytes.Repeat([]byte{0x5A}, 8<<10)
	done := make(chan error, 1)
	go func() {
		_, werr := c.Write(msg)
		done <- werr
	}()
	got := make([]byte, len(msg))
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := got[i] ^ msg[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("round trip differs in %d bits, want exactly 1 (MaxFlips)", diff)
	}
	st := p.Stats()
	if st.BitFlips != 1 {
		t.Fatalf("flip count %d, want 1", st.BitFlips)
	}
	if st.Stalls < 1 {
		t.Fatalf("no stalls injected: %+v", st)
	}
}

// Past HalfOpenEvery the sockets stay open and writes keep landing, but
// nothing is forwarded: the endpoint sees silence, not an error.
func TestHalfOpenSwallowsSilently(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{Seed: 3, HalfOpenEvery: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	chunk := make([]byte, 1024)
	for i := 0; i < 8; i++ {
		if _, err := c.Write(chunk); err != nil {
			t.Fatalf("write %d failed (half-open must swallow, not error): %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := p.Stats()
	if st.HalfOpens != 1 {
		t.Fatalf("half-open count %d, want 1: %+v", st.HalfOpens, st)
	}
	// The echo never arrives: the read must time out.
	_ = c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded through a half-open proxy")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("read error %v, want timeout (silence, not closure)", err)
	}
}

// The partition window severs live connections, blackholes new ones for
// its duration, and then heals: a post-window dial works end to end.
func TestPartitionWindowSeversAndHeals(t *testing.T) {
	ln := echoServer(t)
	p, err := New(ln.Addr().String(), Plan{
		Seed:           9,
		PartitionAfter: 50 * time.Millisecond,
		Partition:      150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	pre := dialProxy(t, p)
	if _, err := pre.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	_ = pre.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(pre, buf); err != nil {
		t.Fatal(err)
	}

	// Wait for the window to open, then the pre-partition conn must die.
	deadline := time.Now().Add(3 * time.Second)
	for !p.Stats().Partition && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !p.Stats().Partition {
		t.Fatal("partition window never opened")
	}
	_ = pre.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := pre.Read(buf); err == nil {
		t.Fatal("pre-partition connection survived the blackhole")
	}

	// During the window a dial connects (kernel handshake) but nothing
	// answers.
	mid := dialProxy(t, p)
	if _, err := mid.Write([]byte("void?")); err == nil {
		_ = mid.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := mid.Read(buf); err == nil {
			t.Fatal("blackholed connection got an answer")
		}
	}

	// After the window closes the proxy heals.
	time.Sleep(200 * time.Millisecond)
	post := dialProxy(t, p)
	if _, err := post.Write([]byte("again")); err != nil {
		t.Fatal(err)
	}
	_ = post.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(post, buf); err != nil {
		t.Fatalf("post-partition echo failed: %v", err)
	}
	if string(buf) != "again" {
		t.Fatalf("post-partition echo = %q", buf)
	}
}
