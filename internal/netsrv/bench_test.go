package netsrv

import (
	"fmt"
	"sync"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/server"
)

// BenchmarkNetIngest prices the process boundary: the identical streaming
// workload (4 frames/rank × 8 records, total rank count held constant as
// it spreads over more tenants) delivered either straight into in-process
// servers or through vSS1 sessions over real loopback TCP with pipelined
// frame/ack envelopes. scripts/check.sh gates the multi-tenant TCP number
// at ranks=4096 against the in-process single-tenant one (within
// NET_MAX_SLOWDOWN×), so the session layer cannot quietly become the
// bottleneck the sharded server was built to avoid.

const (
	netBenchFramesPerRank = 4
	netBenchSensors       = 8
)

// buildNetBenchFrames pre-encodes one tenant's session: frames for
// ranks [lo, hi), slice-major so the watermark advances realistically.
func buildNetBenchFrames(lo, hi int) [][]byte {
	var frames [][]byte
	recs := make([]detect.SliceRecord, netBenchSensors)
	for sl := 0; sl < netBenchFramesPerRank; sl++ {
		for rank := lo; rank < hi; rank++ {
			for sn := 0; sn < netBenchSensors; sn++ {
				avg := 100.0 + float64(sn)
				if rank == lo {
					avg *= 2 // each tenant has one straggler rank
				}
				recs[sn] = detect.SliceRecord{
					Sensor:  sn,
					Rank:    rank,
					SliceNs: int64(sl) * 1_000_000,
					Count:   4,
					AvgNs:   avg,
				}
			}
			h := server.FrameHeader{
				Rank:       rank,
				Seq:        uint64(sl) + 1,
				CumRecords: uint64(sl+1) * netBenchSensors,
			}
			frames = append(frames, server.AppendFrame(nil, h, recs))
		}
	}
	return frames
}

// tenantFrames splits totalRanks across tenants and pre-encodes each
// tenant's frame schedule.
func tenantFrames(tenants, totalRanks int) [][][]byte {
	perTenant := totalRanks / tenants
	out := make([][][]byte, tenants)
	for t := 0; t < tenants; t++ {
		out[t] = buildNetBenchFrames(t*perTenant, (t+1)*perTenant)
	}
	return out
}

func BenchmarkNetIngest(b *testing.B) {
	for _, tenants := range []int{1, 8, 64} {
		for _, ranks := range []int{64, 512, 4096} {
			if ranks < tenants {
				continue
			}
			frames := tenantFrames(tenants, ranks)
			records := ranks * netBenchFramesPerRank * netBenchSensors

			b.Run(fmt.Sprintf("mode=inproc/tenants=%d/ranks=%d", tenants, ranks), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					srvs := make([]*server.Server, tenants)
					for t := range srvs {
						srvs[t] = server.NewSharded(server.DefaultShards)
					}
					var wg sync.WaitGroup
					for t := 0; t < tenants; t++ {
						wg.Add(1)
						go func(t int) {
							defer wg.Done()
							for _, f := range frames[t] {
								if err := srvs[t].Receive(f); err != nil {
									b.Error(err)
									return
								}
							}
						}(t)
					}
					wg.Wait()
				}
				b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})

			b.Run(fmt.Sprintf("mode=tcp/tenants=%d/ranks=%d", tenants, ranks), func(b *testing.B) {
				svc, err := Listen("127.0.0.1:0", Config{
					Shards:      server.DefaultShards,
					MinWorkers:  tenants,
					MaxWorkers:  tenants + 2,
					AcceptQueue: tenants + 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer svc.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					// Fresh run IDs per iteration: sequence dedup would
					// otherwise absorb the repeat deliveries. Sessions go
					// through the self-healing wrapper — reconnect armed,
					// no faults — so the gate prices the resilience layer
					// the production path actually runs.
					sessions := make([]*ResilientSession, tenants)
					for t := range sessions {
						s, err := DialResilient(ReconnectConfig{
							Addr:  svc.Addr().String(),
							Hello: Hello{RunID: fmt.Sprintf("bench-%d-%d", i, t), Rank: 0},
						})
						if err != nil {
							b.Fatal(err)
						}
						sessions[t] = s
					}
					b.StartTimer()
					var wg sync.WaitGroup
					for t := 0; t < tenants; t++ {
						wg.Add(1)
						go func(t int) {
							defer wg.Done()
							for _, f := range frames[t] {
								if err := sessions[t].SendAsync(f); err != nil {
									b.Error(err)
									return
								}
							}
							if err := sessions[t].Drain(); err != nil {
								b.Error(err)
							}
						}(t)
					}
					wg.Wait()
					b.StopTimer()
					for _, s := range sessions {
						s.Close()
					}
					b.StartTimer()
				}
				b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}
