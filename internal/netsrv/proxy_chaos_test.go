package netsrv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vsensor/internal/netsrv/chaosproxy"
	"vsensor/internal/server"
	"vsensor/internal/storage"
	"vsensor/internal/transport"
)

// These suites push faults below every layer the repo already attacks:
// not frame dice (transport.FaultPlan), not disk faults (storage.Faults),
// but the TCP byte stream itself — resets, partitions, stalls, bit flips,
// runt and coalesced writes, half-open peers — via the seeded
// chaosproxy. The client is a ResilientSession, so the assertion is the
// strongest the repo makes: the final state must be EXACTLY the
// undisturbed reference, because envelope CRCs keep corruption out of
// tenant accounting and resume-LSN reconnects redeliver precisely the
// unjournaled suffix.

// proxyDial builds a ResilientSession tuned for tests: tight I/O
// deadlines so proxy faults surface in milliseconds, and a generous
// outage budget so no fault window is ever misread as a down server.
func proxyDial(t *testing.T, addr, runID string, seed int64) *ResilientSession {
	t.Helper()
	rs, err := DialResilient(ReconnectConfig{
		Addr:  addr,
		Hello: Hello{RunID: runID, Rank: 0},
		Dial:  DialConfig{Timeout: 500 * time.Millisecond, OpTimeout: 300 * time.Millisecond},
		Retry: RetryPolicy{
			MaxElapsed:  30 * time.Second,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			Seed:        seed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestProxyChaosExactlyOnce drives the concurrent-rank workload through a
// chaos proxy injecting every wire fault at once. The tenant's final
// record log must equal a fault-free in-process reference after sorting,
// with complete coverage — exactly-once delivery while the wire itself
// lies, under -race.
func TestProxyChaosExactlyOnce(t *testing.T) {
	const ranks, perRank = 8, 200
	for _, seed := range []int64{3, 17, 59} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			svc, err := Listen("127.0.0.1:0", Config{
				Shards: 1, MaxWorkers: 4,
				IdleSession:  2 * time.Second,
				WriteTimeout: 2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			px, err := chaosproxy.New(svc.Addr().String(), chaosproxy.Plan{
				Seed:           seed,
				SplitWrites:    true,
				CoalesceWrites: true,
				CorruptBit:     0.005,
				ResetEvery:     6 << 10,
				StallEvery:     10 << 10,
				Stall:          30 * time.Millisecond,
				HalfOpenEvery:  28 << 10,
				PartitionAfter: 150 * time.Millisecond,
				Partition:      100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer px.Close()

			rs := proxyDial(t, px.Addr(), "proxychaos", seed)
			defer rs.Close()

			runRanksOver(t, rs, transport.FaultPlan{}, ranks, perRank)

			clean := server.New()
			runRanksOver(t, clean, transport.FaultPlan{}, ranks, perRank)

			faulty := svc.Tenant("proxychaos")
			got, want := faulty.Records(), clean.Records()
			sortRecs(got)
			sortRecs(want)
			if len(got) != len(want) {
				t.Fatalf("proxied log has %d records, reference %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d differs after sorting:\n got: %+v\nwant: %+v", i, got[i], want[i])
				}
			}
			if cov := faulty.Coverage(); !cov.Complete() {
				t.Errorf("coverage incomplete through the chaos proxy: %+v", cov)
			}
			pst, sst, cst := px.Stats(), rs.Stats(), svc.Stats()
			if pst.Resets == 0 {
				t.Errorf("proxy injected no resets; plan too tame: %+v", pst)
			}
			if sst.Reconnects == 0 {
				t.Errorf("session never reconnected through %d resets: %+v", pst.Resets, sst)
			}
			if pst.BitFlips > 0 && cst.CorruptEnvelopes == 0 && sst.Reconnects <= pst.Resets {
				t.Errorf("%d bit flips but no corruption-triggered teardown anywhere: svc=%+v sess=%+v",
					pst.BitFlips, cst, sst)
			}
			if rs.Ack().Flags&AckFlagResumed == 0 {
				t.Error("reconnected session ack not flagged resumed")
			}
		})
	}
}

// TestProxyKillRecoverConformance is the everything-at-once suite: seeded
// proxy wire faults × tenant crash windows × seeded disk faults, driven
// as a deterministic delivery schedule through a ResilientSession. Every
// trial's records, coverage, heartbeats, and outlier verdicts must be
// exactly equal to an in-process reference that saw the same schedule
// with no proxy, no crashes, and no disk — the vSensor fixed-workload
// promise surviving all three fault domains at once, under -race.
func TestProxyKillRecoverConformance(t *testing.T) {
	const trials = 8
	var totalReconnects int64
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x9E7C4A + int64(trial)*7919))
			ranks := 3 + rng.Intn(8)
			shards := 1 << rng.Intn(3)
			sensors := 1 + rng.Intn(3)
			slices := 2 + rng.Intn(3)
			threshold := []float64{0.7, 0.8, 0.9}[rng.Intn(3)]
			plan := schedulePlan{
				drop:    []float64{0, 0.15}[rng.Intn(2)],
				dup:     []float64{0, 0.15}[rng.Intn(2)],
				corrupt: []float64{0, 0.1}[rng.Intn(2)],
				shuffle: rng.Intn(2) == 0,
			}
			frames := buildRankFrames(rng, ranks, sensors, slices)
			schedule := buildSchedule(rng, frames, plan)
			withHB := make([][]byte, 0, len(schedule)+ranks)
			for i, f := range schedule {
				withHB = append(withHB, f)
				if i%7 == 3 {
					withHB = append(withHB, server.AppendHeartbeat(nil, i%ranks, int64(i)*1_000_000, 5_000_000))
				}
			}
			schedule = withHB
			nCrashes := 1 + rng.Intn(3)
			var crashes []int
			for i := 0; i < nCrashes; i++ {
				crashes = append(crashes, rng.Intn(len(schedule)+1))
			}

			// Reference: in-process, in order, no faults of any kind.
			ref := server.NewSharded(shards)
			for _, f := range schedule {
				_ = ref.Receive(f)
			}

			var dur *server.Server
			svc, err := Listen("127.0.0.1:0", Config{
				MaxWorkers:   4,
				IdleSession:  500 * time.Millisecond,
				WriteTimeout: time.Second,
				NewServer: func(runID string) *server.Server {
					dur = server.NewSharded(shards)
					dur.AttachDurability(server.DurabilityConfig{
						SyncEvery:     []int{0, 1, 4, 16}[rng.Intn(4)],
						FlushEvery:    []int{0, 0, 2, 8}[rng.Intn(4)],
						Coalesce:      rng.Intn(2) == 0,
						SnapshotEvery: []int{0, -1, 3, 8}[rng.Intn(4)],
						Disk: storage.NewDisk(storage.Faults{
							Seed:      0xD15C + int64(trial),
							TornWrite: []float64{0, 0.5, 1}[rng.Intn(3)],
							SyncLoss:  []float64{0, 0.3}[rng.Intn(2)],
							BitRot:    []float64{0, 0.4}[rng.Intn(2)],
						}),
					})
					return dur
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			px, err := chaosproxy.New(svc.Addr().String(), chaosproxy.Plan{
				Seed:           0xFACADE + int64(trial),
				SplitWrites:    true,
				CoalesceWrites: rng.Intn(2) == 0,
				CorruptBit:     []float64{0, 0.01, 0.03}[rng.Intn(3)],
				ResetEvery:     int64(4+rng.Intn(12)) << 10,
				StallEvery:     16 << 10,
				Stall:          20 * time.Millisecond,
				HalfOpenEvery:  64 << 10,
				PartitionAfter: 100 * time.Millisecond,
				Partition:      60 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer px.Close()

			rs := proxyDial(t, px.Addr(), "pxkill", int64(trial))
			defer rs.Close()
			if dur == nil {
				t.Fatal("tenant factory never ran")
			}

			// Racing pollers: the tenant read surface under -race, plus a
			// re-dialer hammering the resumed handshake through the proxy
			// while crashes and wire faults land.
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					_ = dur.InterProcessOutliers(threshold)
					_ = dur.Coverage()
					_ = dur.Liveness()
					_ = dur.Records()
					_ = dur.DurabilityStats()
				}
			}()
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if p, err := Dial(px.Addr(), Hello{RunID: "pxkill", Rank: 1},
						DialConfig{Timeout: 200 * time.Millisecond, OpTimeout: 200 * time.Millisecond}); err == nil {
						p.Close()
					}
				}
			}()

			// Drive the schedule. Every delivered envelope journals exactly
			// one outcome, so the durable LSN counts schedule positions —
			// the same dense-LSN re-drive contract as the in-process
			// kill-recover suite, except here the ResilientSession is also
			// absorbing proxy-induced connection deaths underneath us.
			i := 0
			for _, cp := range crashes {
				for i < cp && i < len(schedule) {
					_ = rs.Receive(schedule[i]) // corrupt frames reject; that's their job
					i++
				}
				if err := dur.Crash(); err != nil {
					t.Fatalf("crash at %d: %v", i, err)
				}
				recov, err := dur.Recover()
				if err != nil {
					t.Fatalf("recover at %d: %v", i, err)
				}
				if recov.LSN > uint64(i) {
					t.Fatalf("recovered LSN %d exceeds %d delivered items", recov.LSN, i)
				}
				// Acked-but-unsynced WAL tail died with the crash: rewind
				// the session's durable-position belief to the recovered
				// LSN before re-driving, like any checkpointed producer.
				rs.ResyncLSN(recov.LSN)
				i = int(recov.LSN)
			}
			for ; i < len(schedule); i++ {
				_ = rs.Receive(schedule[i])
			}
			close(done)
			wg.Wait()

			gotRecs, refRecs := dur.Records(), ref.Records()
			if len(gotRecs) != len(refRecs) {
				t.Fatalf("recovered log holds %d records, reference %d", len(gotRecs), len(refRecs))
			}
			for j := range gotRecs {
				if gotRecs[j] != refRecs[j] {
					t.Fatalf("record %d differs:\n got: %+v\nwant: %+v", j, gotRecs[j], refRecs[j])
				}
			}
			if got, want := dur.Coverage(), ref.Coverage(); got != want {
				t.Fatalf("coverage differs:\n got: %+v\nwant: %+v", got, want)
			}
			if got, want := dur.Heartbeats(), ref.Heartbeats(); got != want {
				t.Fatalf("heartbeats %d, want %d", got, want)
			}
			gotOut, refOut := dur.InterProcessOutliers(threshold), ref.InterProcessOutliers(threshold)
			if len(gotOut) != len(refOut) {
				t.Fatalf("outliers: %d vs reference %d", len(gotOut), len(refOut))
			}
			for j := range gotOut {
				if gotOut[j] != refOut[j] {
					t.Fatalf("outlier %d differs:\n got: %+v\nwant: %+v", j, gotOut[j], refOut[j])
				}
			}
			st := rs.Stats()
			totalReconnects += st.Reconnects
			if st.Outages != 0 {
				t.Errorf("retry budget exhausted %d times; faults should never look like a down server here", st.Outages)
			}
			// A fresh session against the survivor reads the durable LSN
			// from its vSA1 ack — the resume contract across all faults.
			s2, err := Dial(px.Addr(), Hello{RunID: "pxkill", Rank: 2}, DialConfig{})
			if err == nil {
				defer s2.Close()
				if s2.Ack().Flags&AckFlagResumed == 0 {
					t.Error("fresh session not flagged as resumed")
				}
				if got, want := s2.Ack().LSN, dur.DurabilityStats().LSN; got != want {
					t.Fatalf("session-ack LSN %d, want durable LSN %d", got, want)
				}
			}
		})
	}
	if totalReconnects == 0 {
		t.Errorf("no trial ever reconnected; the proxy plans are too tame to prove resilience")
	}
}
