package netsrv

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vsensor/internal/server"
)

// Dead-peer defense suite: every way a peer can go quiet — never saying
// hello, going idle after admission, dribbling heartbeats, or reading
// nothing while acks pile up — must end with the connection reaped and
// the worker freed, never with a goroutine pinned forever.

// TestHelloTimeoutExpires connects and says nothing. The hello deadline
// must fire, the connection must be refused as a bad hello, and the
// refusal must actually reach the silent peer before the close.
func TestHelloTimeoutExpires(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{HelloTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	c, err := net.Dial("tcp", svc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	payload, _, err := readEnvelope(bufio.NewReader(c), nil, 256)
	if err != nil {
		t.Fatalf("expected a refusal envelope before close, got %v", err)
	}
	ref, err := ParseRefuse(payload)
	if err != nil {
		t.Fatalf("parse refuse: %v", err)
	}
	if ref.Code != RefuseBadHello {
		t.Fatalf("refusal code %d, want RefuseBadHello", ref.Code)
	}
	if st := svc.Stats(); st.RefusedBadHello != 1 {
		t.Fatalf("RefusedBadHello = %d, want 1: %+v", st.RefusedBadHello, st)
	}
}

// TestIdleReaperFires admits a session and then goes silent. The idle
// reaper must close it within the window and book it in SessionsReaped.
func TestIdleReaperFires(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{IdleSession: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	s, err := Dial(svc.Addr().String(), Hello{RunID: "idle"}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	waitFor(t, "idle reaper", func() bool {
		return svc.Stats().SessionsReaped >= 1
	})
	waitFor(t, "reaped session to leave the open set", func() bool {
		return svc.Stats().SessionsOpen == 0
	})
	// The reaped client sees a transport error, not a hang.
	hb := server.AppendHeartbeat(nil, 0, 1_000_000, 5_000_000)
	if err := s.Receive(hb); err == nil {
		t.Fatal("Receive on a reaped session succeeded")
	}
}

// TestIdleReaperSparedByHeartbeats keeps a session alive far beyond the
// idle window using nothing but heartbeat frames. Every envelope resets
// the deadline, so liveness traffic is all a healthy-but-quiet rank
// needs; the reaper must never fire.
func TestIdleReaperSparedByHeartbeats(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{IdleSession: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	s, err := Dial(svc.Addr().String(), Hello{RunID: "hb"}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	deadline := time.Now().Add(600 * time.Millisecond) // 4× the idle window
	for i := int64(0); time.Now().Before(deadline); i++ {
		hb := server.AppendHeartbeat(nil, 0, i*50_000_000, 5_000_000)
		if err := s.Receive(hb); err != nil {
			t.Fatalf("heartbeat %d failed: %v", i, err)
		}
		time.Sleep(40 * time.Millisecond)
	}
	if st := svc.Stats(); st.SessionsReaped != 0 {
		t.Fatalf("reaper fired %d times while heartbeats flowed: %+v", st.SessionsReaped, st)
	}
	if svc.Tenant("hb").Heartbeats() == 0 {
		t.Fatal("no heartbeats recorded")
	}
}

// TestAckWriteDeadlineFires pins the write-deadline half of the dead-peer
// defense in isolation: an ack flush toward a peer that never reads (a
// net.Pipe with no reader has zero buffer, the pathological stalled
// reader) must return a timeout within WriteTimeout and be booked as a
// reaped session — not park the worker in Write forever.
func TestAckWriteDeadlineFires(t *testing.T) {
	svc := &Service{cfg: Config{WriteTimeout: 50 * time.Millisecond}}
	c, peer := net.Pipe()
	defer c.Close()
	defer peer.Close()

	w := bufio.NewWriter(c)
	r := bufio.NewReader(c)
	start := time.Now()
	err := svc.writeAck(c, w, r, []byte{frameAckOK})
	if err == nil {
		t.Fatal("ack flush to a stalled reader returned nil")
	}
	if !isTimeout(err) {
		t.Fatalf("ack flush returned %v, want a deadline timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("flush took %v, want ~WriteTimeout", d)
	}
	if got := svc.Stats().SessionsReaped; got != 1 {
		t.Fatalf("SessionsReaped = %d, want 1", got)
	}
}

// TestStalledReaderReaped plays the other half of slow-loris over real
// TCP: a client that writes frames but never reads acks. Socket buffers
// are pinched so backpressure reaches the service quickly. Which defense
// trips first is kernel-dependent — the ack backlog can wedge the
// connection's read side before the next armed flush would block — so
// both deadlines are configured and the assertion is the contract that
// matters: the session is reaped, booked, and the worker freed.
func TestStalledReaderReaped(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{
		WriteTimeout: 150 * time.Millisecond,
		IdleSession:  400 * time.Millisecond,
		tuneConn: func(c net.Conn) {
			if tc, ok := c.(*net.TCPConn); ok {
				_ = tc.SetWriteBuffer(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	c, err := net.Dial("tcp", svc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(1)
	}

	w := bufio.NewWriter(c)
	if err := writeEnvelope(w, AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "stall"})); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read only the session ack, then stop reading forever.
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readEnvelope(bufio.NewReader(c), nil, 64); err != nil {
		t.Fatalf("session ack: %v", err)
	}

	hb := server.AppendHeartbeat(nil, 0, 1_000_000, 5_000_000)
	var wrote atomic.Int64
	go func() {
		for {
			_ = c.SetWriteDeadline(time.Now().Add(time.Second))
			if err := writeEnvelope(w, hb); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			wrote.Add(1)
		}
	}()

	waitFor(t, "reap of the stalled reader", func() bool {
		return svc.Stats().SessionsReaped >= 1
	})
	waitFor(t, "stalled session to close", func() bool {
		return svc.Stats().SessionsOpen == 0
	})
	if wrote.Load() == 0 {
		t.Fatal("stalled-reader client never delivered a frame")
	}
}

// TestDialRetryHonorsRetryAfter occupies the single per-run session slot,
// frees it mid-budget, and expects DialRetry to absorb the vSE1 refusals
// (sleeping per their RetryAfterMs hint) and land the session.
func TestDialRetryHonorsRetryAfter(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{MaxRunSessions: 1, RetryAfterMs: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	s1, err := Dial(svc.Addr().String(), Hello{RunID: "slot"}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		s1.Close()
	}()

	s2, st, err := DialRetry(svc.Addr().String(), Hello{RunID: "slot", Rank: 1}, DialConfig{},
		RetryPolicy{MaxElapsed: 5 * time.Second, Seed: 7})
	if err != nil {
		t.Fatalf("DialRetry never landed: %v (stats %+v)", err, st)
	}
	defer s2.Close()
	if st.Refusals == 0 {
		t.Fatalf("slot was held 150ms but DialRetry saw no refusals: %+v", st)
	}
	if st.Attempts < 2 {
		t.Fatalf("expected at least one retry, got %+v", st)
	}

	// Exhausted budget surfaces the last refusal, typed; s2 still holds
	// the slot, so every attempt inside the budget is refused.
	_, _, err = DialRetry(svc.Addr().String(), Hello{RunID: "slot", Rank: 3}, DialConfig{},
		RetryPolicy{MaxElapsed: 120 * time.Millisecond, Seed: 7})
	var ref *Refuse
	if !errors.As(err, &ref) || ref.Code != RefuseRunSessions {
		t.Fatalf("exhausted budget returned %v, want *Refuse{RefuseRunSessions}", err)
	}
}

// TestSessionPoisonAndIdempotentClose covers the leak-proofing contract:
// once a transport write fails, every later call on the session fails
// fast with the same sticky error instead of deadlocking on a dead
// socket, and Close is safe to call any number of times.
func TestSessionPoisonAndIdempotentClose(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Dial(svc.Addr().String(), Hello{RunID: "poison"}, DialConfig{OpTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close() // kill the service out from under the session

	hb := server.AppendHeartbeat(nil, 0, 1_000_000, 5_000_000)
	waitFor(t, "session poisoning", func() bool {
		return s.SendAsync(hb) != nil
	})
	if s.Broken() == nil {
		t.Fatal("poisoned session reports Broken() == nil")
	}
	// Poisoned calls fail fast — well under the op deadline.
	start := time.Now()
	if err := s.Receive(hb); err == nil {
		t.Fatal("Receive on poisoned session succeeded")
	}
	if err := s.SendAsync(hb); err == nil {
		t.Fatal("SendAsync on poisoned session succeeded")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("poisoned calls took %v, want fail-fast", d)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
}

// TestResilientOutageSurfacesServerDown kills the service for good and
// expects the ResilientSession to burn its redial budget and surface
// server.ErrServerDown — the sentinel the Link layer parks frames on —
// rather than an anonymous socket error.
func TestResilientOutageSurfacesServerDown(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := DialResilient(ReconnectConfig{
		Addr:  svc.Addr().String(),
		Hello: Hello{RunID: "outage"},
		Dial:  DialConfig{Timeout: 100 * time.Millisecond, OpTimeout: 100 * time.Millisecond},
		Retry: RetryPolicy{MaxElapsed: 250 * time.Millisecond, BackoffBase: time.Millisecond, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	svc.Close()

	hb := server.AppendHeartbeat(nil, 0, 1_000_000, 5_000_000)
	var got error
	waitFor(t, "outage classification", func() bool {
		got = rs.Receive(hb)
		return got != nil
	})
	if !errors.Is(got, server.ErrServerDown) {
		t.Fatalf("outage surfaced as %v, want server.ErrServerDown", got)
	}
	if st := rs.Stats(); st.Outages == 0 {
		t.Fatalf("outage not booked in stats: %+v", st)
	}
}

// TestResilientReconnectResumes restarts the service on the same address
// and expects the session to redial, resume from the ack LSN, and keep
// delivering — the client-visible half of the self-healing contract.
func TestResilientReconnectResumes(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := svc.Addr().String()
	rs, err := DialResilient(ReconnectConfig{
		Addr:  addr,
		Hello: Hello{RunID: "resume"},
		Dial:  DialConfig{Timeout: 200 * time.Millisecond, OpTimeout: 200 * time.Millisecond},
		Retry: RetryPolicy{MaxElapsed: 10 * time.Second, BackoffBase: time.Millisecond, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	hb := server.AppendHeartbeat(nil, 0, 1_000_000, 5_000_000)
	for i := 0; i < 5; i++ {
		if err := rs.Receive(hb); err != nil {
			t.Fatalf("pre-restart heartbeat %d: %v", i, err)
		}
	}
	svc.Close()
	svc2, err := Listen(addr, Config{})
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer svc2.Close()

	for i := 0; i < 5; i++ {
		if err := rs.Receive(hb); err != nil {
			t.Fatalf("post-restart heartbeat %d: %v", i, err)
		}
	}
	st := rs.Stats()
	if st.Reconnects == 0 {
		t.Fatalf("no reconnect recorded across restart: %+v", st)
	}
	if hb := svc2.Tenant("resume").Heartbeats(); hb < 5 {
		t.Fatalf("survivor saw %d heartbeats, want >= 5", hb)
	}
}
