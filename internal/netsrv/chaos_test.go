package netsrv

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"vsensor/internal/detect"
	"vsensor/internal/server"
	"vsensor/internal/storage"
	"vsensor/internal/transport"
)

// These are the ROADMAP's "suites keep running unchanged" tests: the same
// chaos and kill-recover conformance properties the in-process suites
// assert, but with every frame crossing a real loopback TCP socket. The
// fault-injecting transport.Link now proxies onto a *Session (one pluggable
// Medium among others), so the identical FaultPlan dice land on real socket
// traffic.

func sortRecs(recs []detect.SliceRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.SliceNs != b.SliceNs {
			return a.SliceNs < b.SliceNs
		}
		if a.Sensor != b.Sensor {
			return a.Sensor < b.Sensor
		}
		return a.Group < b.Group
	})
}

func chaosRec(rank, i int) detect.SliceRecord {
	return detect.SliceRecord{
		Sensor: i % 7, Group: i % 3, Rank: rank,
		SliceNs: int64(i) * 1_000_000, Count: 1, AvgNs: float64(100 + i%13),
	}
}

// runRanksOver pushes the workload through a transport.Link wrapping an
// arbitrary Medium, from concurrent rank goroutines — the socket twin of
// the in-process transport test harness.
func runRanksOver(t *testing.T, m transport.Medium, plan transport.FaultPlan, ranks, perRank int) {
	t.Helper()
	link := transport.NewLinkOver(m, plan)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			conn := link.NewConn(rank, transport.Config{
				BatchSize: 8, TimeoutNs: 10, BackoffBaseNs: 10, MaxRetries: 12,
			})
			for i := 0; i < perRank; i++ {
				if err := conn.OnSlice(chaosRec(rank, i)); err != nil {
					errs[rank] = err
					return
				}
			}
			errs[rank] = conn.Close()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestSocketChaosExactlyOnce is TestChaosExactlyOnce over real loopback
// TCP: under seeded drops, duplicates, reordering, corruption, and a
// link-level crash window, the networked tenant's final record log must
// equal a fault-free in-process reference after sorting — exactly-once
// delivery of every record across the socket, from concurrent rank
// goroutines, under -race.
func TestSocketChaosExactlyOnce(t *testing.T) {
	const ranks, perRank = 8, 200
	for _, seed := range []int64{11, 29, 47} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := transport.FaultPlan{
				Seed: seed, Drop: 0.25, Dup: 0.1, Reorder: 0.15, Corrupt: 0.05,
				CrashAfterFrames: 60, CrashDownFrames: 20,
			}

			svc, err := Listen("127.0.0.1:0", Config{Shards: 1, MaxWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			sess, err := Dial(svc.Addr().String(), Hello{RunID: "chaos", Rank: 0}, DialConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()

			runRanksOver(t, sess, plan, ranks, perRank)

			clean := server.New()
			runRanksOver(t, clean, transport.FaultPlan{}, ranks, perRank)

			faulty := svc.Tenant("chaos")
			got, want := faulty.Records(), clean.Records()
			sortRecs(got)
			sortRecs(want)
			if len(got) != len(want) {
				t.Fatalf("socket log has %d records, in-process reference %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d differs after sorting:\n got: %+v\nwant: %+v", i, got[i], want[i])
				}
			}
			cov := faulty.Coverage()
			if !cov.Complete() {
				t.Errorf("coverage incomplete over socket: %+v", cov)
			}
			if cov.DupFrames == 0 || cov.ChecksumErrors == 0 {
				t.Errorf("chaos plan injected no dups/corruption over the socket? coverage = %+v", cov)
			}
		})
	}
}

// buildRankFrames generates each rank's record stream and splits it into
// sequenced frames (the netsrv copy of the server conformance generator;
// that one is package-internal).
func buildRankFrames(rng *rand.Rand, ranks, sensors, slices int) [][]byte {
	var frames [][]byte
	for rank := 0; rank < ranks; rank++ {
		var recs []detect.SliceRecord
		for sl := 0; sl < slices; sl++ {
			for sn := 0; sn < sensors; sn++ {
				if rng.Float64() < 0.15 {
					continue
				}
				recs = append(recs, detect.SliceRecord{
					Sensor:  sn,
					Group:   rng.Intn(2),
					Rank:    rank,
					SliceNs: int64(sl) * 1_000_000,
					Count:   int32(1 + rng.Intn(9)),
					AvgNs:   50 + 400*rng.Float64(),
				})
			}
		}
		var seq, cum uint64
		for len(recs) > 0 {
			n := 1 + rng.Intn(4)
			if n > len(recs) {
				n = len(recs)
			}
			seq++
			cum += uint64(n)
			frames = append(frames, server.AppendFrame(nil, server.FrameHeader{Rank: rank, Seq: seq, CumRecords: cum}, recs[:n]))
			recs = recs[n:]
		}
	}
	return frames
}

// schedulePlan is the harness-level fault plan applied to a frame list
// (deterministic, interleaving-free — the faults live in the schedule
// itself, so a networked run and an in-process run see identical inputs).
type schedulePlan struct {
	drop    float64
	dup     float64
	corrupt float64
	shuffle bool
}

func buildSchedule(rng *rand.Rand, frames [][]byte, plan schedulePlan) [][]byte {
	var schedule [][]byte
	for _, f := range frames {
		if rng.Float64() < plan.drop {
			continue
		}
		schedule = append(schedule, f)
		if rng.Float64() < plan.dup {
			schedule = append(schedule, f)
		}
		if rng.Float64() < plan.corrupt {
			bad := append([]byte(nil), f...)
			bit := rng.Intn(len(bad) * 8)
			bad[bit/8] ^= 1 << (bit % 8)
			schedule = append(schedule, bad)
		}
	}
	if plan.shuffle {
		rng.Shuffle(len(schedule), func(i, j int) {
			schedule[i], schedule[j] = schedule[j], schedule[i]
		})
	}
	return schedule
}

// TestSocketKillRecoverConformance is TestKillRecoverConformance with the
// delivery schedule crossing loopback TCP: a durable tenant behind the
// service, fed through a session, crashing and recovering mid-stream, must
// end exactly equal to an in-process server that never crashed — same
// record log, same coverage, same heartbeats. The LSN that Recover reports
// (and that a reconnecting client would read from its vSA1 session ack)
// tells the sender where to resume, exactly as in process.
func TestSocketKillRecoverConformance(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x50C4E7 + int64(trial)*104729))
			ranks := 3 + rng.Intn(8)
			shards := 1 << rng.Intn(3)
			sensors := 1 + rng.Intn(3)
			slices := 2 + rng.Intn(3)
			threshold := []float64{0.7, 0.8, 0.9}[rng.Intn(3)]
			plan := schedulePlan{
				drop:    []float64{0, 0.15}[rng.Intn(2)],
				dup:     []float64{0, 0.15}[rng.Intn(2)],
				corrupt: []float64{0, 0.1}[rng.Intn(2)],
				shuffle: rng.Intn(2) == 0,
			}
			frames := buildRankFrames(rng, ranks, sensors, slices)
			schedule := buildSchedule(rng, frames, plan)
			withHB := make([][]byte, 0, len(schedule)+ranks)
			for i, f := range schedule {
				withHB = append(withHB, f)
				if i%7 == 3 {
					withHB = append(withHB, server.AppendHeartbeat(nil, i%ranks, int64(i)*1_000_000, 5_000_000))
				}
			}
			schedule = withHB
			nCrashes := 1 + rng.Intn(3)
			var crashes []int
			for i := 0; i < nCrashes; i++ {
				crashes = append(crashes, rng.Intn(len(schedule)+1))
			}

			// Reference: in-process, in order, no crashes, no network.
			ref := server.NewSharded(shards)
			for _, f := range schedule {
				_ = ref.Receive(f)
			}

			// The durable tenant is built by the service's factory hook; the
			// test keeps the pointer so it can crash it mid-stream.
			var dur *server.Server
			svc, err := Listen("127.0.0.1:0", Config{
				MaxWorkers: 4,
				NewServer: func(runID string) *server.Server {
					dur = server.NewSharded(shards)
					dur.AttachDurability(server.DurabilityConfig{
						SyncEvery:     []int{0, 1, 4, 16}[rng.Intn(4)],
						FlushEvery:    []int{0, 0, 2, 8}[rng.Intn(4)],
						Coalesce:      rng.Intn(2) == 0,
						SnapshotEvery: []int{0, -1, 3, 8}[rng.Intn(4)],
						Disk: storage.NewDisk(storage.Faults{
							Seed:      0xBAD + int64(trial),
							TornWrite: []float64{0, 0.5, 1}[rng.Intn(3)],
							SyncLoss:  []float64{0, 0.3}[rng.Intn(2)],
							BitRot:    []float64{0, 0.4}[rng.Intn(2)],
						}),
					})
					return dur
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()

			sess, err := Dial(svc.Addr().String(), Hello{RunID: "kill", Rank: 0}, DialConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			if dur == nil {
				t.Fatal("tenant factory never ran")
			}

			// Racing pollers throughout ingest, crash, and recovery: one on
			// the tenant server (locking story under -race) and one dialing
			// fresh sessions against the same run (exercising the resumed
			// handshake concurrently with crashes).
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					_ = dur.InterProcessOutliers(threshold)
					_ = dur.Coverage()
					_ = dur.Liveness()
					_ = dur.Records()
					_ = dur.DurabilityStats()
				}
			}()
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if p, err := Dial(svc.Addr().String(), Hello{RunID: "kill", Rank: 1}, DialConfig{}); err == nil {
						p.Close()
					}
				}
			}()

			i := 0
			for _, cp := range crashes {
				for i < cp && i < len(schedule) {
					_ = sess.Receive(schedule[i]) // corrupt frames error; that's their job
					i++
				}
				if err := dur.Crash(); err != nil {
					t.Fatalf("crash at %d: %v", i, err)
				}
				if len(schedule) > 0 {
					// The wire reports the outage as an explicit down ack,
					// which the client maps back to ErrServerDown.
					if err := sess.Receive(schedule[0]); !errors.Is(err, server.ErrServerDown) {
						t.Fatalf("Receive while down = %v, want ErrServerDown over the socket", err)
					}
				}
				rs, err := dur.Recover()
				if err != nil {
					t.Fatalf("recover at %d: %v", i, err)
				}
				if rs.LSN > uint64(i) {
					t.Fatalf("recovered LSN %d exceeds %d delivered items", rs.LSN, i)
				}
				i = int(rs.LSN)
			}
			for ; i < len(schedule); i++ {
				_ = sess.Receive(schedule[i])
			}
			close(done)
			wg.Wait()

			gotRecs, refRecs := dur.Records(), ref.Records()
			if len(gotRecs) != len(refRecs) {
				t.Fatalf("recovered log holds %d records, reference %d", len(gotRecs), len(refRecs))
			}
			for j := range gotRecs {
				if gotRecs[j] != refRecs[j] {
					t.Fatalf("record %d differs:\n got: %+v\nwant: %+v", j, gotRecs[j], refRecs[j])
				}
			}
			if got, want := dur.Coverage(), ref.Coverage(); got != want {
				t.Fatalf("coverage differs:\n got: %+v\nwant: %+v", got, want)
			}
			if got, want := dur.Heartbeats(), ref.Heartbeats(); got != want {
				t.Fatalf("heartbeats %d, want %d", got, want)
			}
			gotOut, refOut := dur.InterProcessOutliers(threshold), ref.InterProcessOutliers(threshold)
			if len(gotOut) != len(refOut) {
				t.Fatalf("outliers: %d vs reference %d", len(gotOut), len(refOut))
			}
			for j := range gotOut {
				if gotOut[j] != refOut[j] {
					t.Fatalf("outlier %d differs:\n got: %+v\nwant: %+v", j, gotOut[j], refOut[j])
				}
			}
			// A fresh session against the recovered run reads the durable
			// LSN from its session ack — the resume contract over the wire.
			s2, err := Dial(svc.Addr().String(), Hello{RunID: "kill", Rank: 2}, DialConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Ack().Flags&AckFlagResumed == 0 {
				t.Fatal("reconnect not flagged as resumed")
			}
			if got, want := s2.Ack().LSN, dur.DurabilityStats().LSN; got != want {
				t.Fatalf("session-ack LSN %d, want durable LSN %d", got, want)
			}
		})
	}
}
