package netsrv

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"vsensor/internal/obs"
	"vsensor/internal/server"
)

// The multi-tenant differential conformance property: N concurrent runs
// interleaved over ONE listener must each produce a report bit-identical
// to an isolated single-run server fed the same schedule. Tenancy is an
// addressing layer, never an approximation: no cross-run bleed in records,
// coverage, or outlier verdicts, no matter how sessions interleave on the
// accept queue and worker pool, and no matter who polls /status meanwhile.
func TestMultiTenantDifferentialConformance(t *testing.T) {
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x7E4A47 + int64(trial)*7919))
			runs := 2 + rng.Intn(3)
			ranks := 2 + rng.Intn(5)
			shards := 1 << rng.Intn(3)
			threshold := []float64{0.7, 0.8, 0.9}[rng.Intn(3)]

			// Per-run schedules, faults baked deterministically into the
			// schedule itself so the networked tenant and its isolated
			// reference see byte-identical inputs.
			schedules := make([][][]byte, runs)
			for r := range schedules {
				plan := schedulePlan{
					drop:    []float64{0, 0.1, 0.3}[rng.Intn(3)],
					dup:     []float64{0, 0.15}[rng.Intn(2)],
					corrupt: []float64{0, 0.1}[rng.Intn(2)],
					shuffle: rng.Intn(4) != 0,
				}
				frames := buildRankFrames(rng, ranks, 1+rng.Intn(3), 2+rng.Intn(3))
				schedules[r] = buildSchedule(rng, frames, plan)
			}

			// Isolated references: one private server per run.
			refs := make([]*server.Server, runs)
			for r := range refs {
				refs[r] = server.NewSharded(shards)
				for _, f := range schedules[r] {
					_ = refs[r].Receive(f)
				}
			}

			// One listener, N concurrent tenant sessions.
			o := obs.New()
			svc, err := Listen("127.0.0.1:0", Config{Shards: shards, MaxWorkers: runs + 2})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			svc.SetObs(o)
			o.SetStatus(func() any { return svc.StatusMap() })
			ts := httptest.NewServer(o.Handler())
			defer ts.Close()

			// Racing /status pollers hammer the introspection endpoint while
			// the tenants stream.
			done := make(chan struct{})
			var pollers sync.WaitGroup
			for p := 0; p < 2; p++ {
				pollers.Add(1)
				go func() {
					defer pollers.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						if res, err := ts.Client().Get(ts.URL + "/status"); err == nil {
							res.Body.Close()
						}
					}
				}()
			}

			var wg sync.WaitGroup
			errs := make([]error, runs)
			for r := 0; r < runs; r++ {
				wg.Add(1)
				go func(run int) {
					defer wg.Done()
					sess, err := Dial(svc.Addr().String(), Hello{RunID: fmt.Sprintf("run-%d", run), Rank: 0}, DialConfig{})
					if err != nil {
						errs[run] = err
						return
					}
					defer sess.Close()
					for _, f := range schedules[run] {
						_ = sess.Receive(f) // corrupt frames error by design
					}
				}(r)
			}
			wg.Wait()
			close(done)
			pollers.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("run %d session: %v", r, err)
				}
			}

			// Bit-for-bit equality, tenant by tenant: record log in order,
			// full coverage struct, messages/bytes accounting, and every
			// outlier verdict field.
			for r := 0; r < runs; r++ {
				ten := svc.Tenant(fmt.Sprintf("run-%d", r))
				if ten == nil {
					t.Fatalf("tenant run-%d missing", r)
				}
				ref := refs[r]
				got, want := ten.Records(), ref.Records()
				if len(got) != len(want) {
					t.Fatalf("run %d: %d records, reference %d", r, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("run %d record %d differs:\n got: %+v\nwant: %+v", r, i, got[i], want[i])
					}
				}
				if g, w := ten.Coverage(), ref.Coverage(); g != w {
					t.Fatalf("run %d coverage differs:\n got: %+v\nwant: %+v", r, g, w)
				}
				if g, w := ten.Messages(), ref.Messages(); g != w {
					t.Fatalf("run %d messages %d, want %d", r, g, w)
				}
				if g, w := ten.BytesReceived(), ref.BytesReceived(); g != w {
					t.Fatalf("run %d bytes %d, want %d", r, g, w)
				}
				gotOut, wantOut := ten.InterProcessOutliers(threshold), ref.InterProcessOutliers(threshold)
				if len(gotOut) != len(wantOut) {
					t.Fatalf("run %d: %d outliers, reference %d", r, len(gotOut), len(wantOut))
				}
				for i := range gotOut {
					if gotOut[i] != wantOut[i] {
						t.Fatalf("run %d outlier %d differs:\n got: %+v\nwant: %+v", r, i, gotOut[i], wantOut[i])
					}
				}
				gRep, wRep := ten.InterProcessReport(threshold), ref.InterProcessReport(threshold)
				if gRep.Coverage != wRep.Coverage || gRep.Degraded != wRep.Degraded ||
					len(gRep.Outliers) != len(wRep.Outliers) || len(gRep.DeadRanks) != len(wRep.DeadRanks) {
					t.Fatalf("run %d report header differs:\n got: %+v\nwant: %+v", r, gRep, wRep)
				}
			}
			if st := svc.Stats(); st.Runs != int64(runs) {
				t.Fatalf("service hosts %d runs, want %d", st.Runs, runs)
			}
		})
	}
}
