package netsrv

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vsensor/internal/detect"
	"vsensor/internal/obs"
	"vsensor/internal/server"
)

// testFrame builds one valid vSF1 data frame for rank with n records.
// seq is 1-based; cum counts records through (and including) this frame.
func testFrame(rank int, seq uint64, cum uint64, n int) []byte {
	recs := make([]detect.SliceRecord, n)
	for i := range recs {
		recs[i] = detect.SliceRecord{
			Sensor:  i % 4,
			Group:   1,
			Rank:    rank,
			SliceNs: int64(seq)*1e6 + int64(i),
			Count:   3,
			AvgNs:   100 + float64(i),
		}
	}
	return server.AppendFrame(nil, server.FrameHeader{Rank: rank, Seq: seq, CumRecords: cum}, recs)
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSessionRoundTrip(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sess, err := Dial(svc.Addr().String(), Hello{RunID: "run-a", Rank: 3}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if sess.Ack().Flags&AckFlagResumed != 0 {
		t.Fatalf("fresh run acked as resumed: %+v", sess.Ack())
	}

	for seq := uint64(1); seq <= 4; seq++ {
		if err := sess.Receive(testFrame(3, seq, seq*5, 5)); err != nil {
			t.Fatalf("frame %d: %v", seq, err)
		}
	}
	// Heartbeats ride the same envelope stream.
	if err := sess.Receive(server.AppendHeartbeat(nil, 3, 1e9, 5e9)); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}

	srv := svc.Tenant("run-a")
	if srv == nil {
		t.Fatal("tenant run-a missing after session")
	}
	if got := len(srv.Records()); got != 20 {
		t.Fatalf("tenant ingested %d records, want 20", got)
	}
	if hb := srv.Heartbeats(); hb != 1 {
		t.Fatalf("tenant saw %d heartbeats, want 1", hb)
	}

	// A corrupt frame is acked as a rejection, not a hang or disconnect.
	bad := testFrame(3, 9, 45, 2)
	bad[len(bad)-1] ^= 0xff
	if err := sess.Receive(bad); !errors.Is(err, ErrFrameRejected) {
		t.Fatalf("corrupt frame: got %v, want ErrFrameRejected", err)
	}
	// And the session is still usable afterwards.
	if err := sess.Receive(testFrame(3, 5, 21, 1)); err != nil {
		t.Fatalf("frame after rejection: %v", err)
	}

	st := svc.Stats()
	if st.FramesIn != 6 || st.FramesRejected != 1 {
		t.Fatalf("stats = %+v, want FramesIn=6 FramesRejected=1", st)
	}
}

func TestSessionResumeLSNAndFlags(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	s1, err := Dial(svc.Addr().String(), Hello{RunID: "run-r", Rank: 0}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Receive(testFrame(0, 1, 2, 2)); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Second session against the same run ID sees the resumed flag and the
	// same tenant (an in-memory tenant reports LSN 0; the durable path is
	// exercised by the kill-recover conformance suite).
	s2, err := Dial(svc.Addr().String(), Hello{RunID: "run-r", Rank: 1, ResumeLSN: 7}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Ack().Flags&AckFlagResumed == 0 {
		t.Fatalf("second session not acked as resumed: %+v", s2.Ack())
	}
	if ids := svc.RunIDs(); len(ids) != 1 || ids[0] != "run-r" {
		t.Fatalf("RunIDs = %v, want [run-r]", ids)
	}
}

// TestLoadShedExplicitRefusal saturates a 1-deep accept queue behind a
// 1-worker pool and asserts the overflow connection is refused with an
// explicit vSE1 busy + retry-after — never a silent drop or hang.
func TestLoadShedExplicitRefusal(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{
		MinWorkers:   1,
		MaxWorkers:   1,
		AcceptQueue:  1,
		RetryAfterMs: 123,
		HelloTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	addr := svc.Addr().String()

	// c1 occupies the only worker with a live session.
	c1, err := Dial(addr, Hello{RunID: "shed", Rank: 0}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// c2 parks in the accept queue (it never sends a hello, and the worker
	// is busy, so it stays there).
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitFor(t, "c2 queued", func() bool { return svc.Stats().Accepted == 2 })

	// c3 arrives to a full queue: explicit refusal, bounded wait.
	done := make(chan error, 1)
	go func() {
		_, derr := Dial(addr, Hello{RunID: "shed", Rank: 1}, DialConfig{Timeout: 5 * time.Second})
		done <- derr
	}()
	select {
	case derr := <-done:
		var ref *Refuse
		if !errors.As(derr, &ref) {
			t.Fatalf("shed dial returned %v, want *Refuse", derr)
		}
		if ref.Code != RefuseBusy {
			t.Fatalf("refusal code %d, want RefuseBusy", ref.Code)
		}
		if ref.RetryAfterMs != 123 {
			t.Fatalf("retry-after %dms, want the configured 123", ref.RetryAfterMs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shed connection hung instead of being refused")
	}

	if st := svc.Stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v, want Shed=1", st)
	}
}

// TestPoolScalesUpDown drives enough concurrent sessions to hit
// MaxWorkers, then closes them and watches the pool retire back to
// MinWorkers — never exceeding either bound.
func TestPoolScalesUpDown(t *testing.T) {
	const maxW = 4
	svc, err := Listen("127.0.0.1:0", Config{
		MinWorkers: 1,
		MaxWorkers: maxW,
		IdleWorker: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var sessions []*Session
	for i := 0; i < maxW; i++ {
		s, err := Dial(svc.Addr().String(), Hello{RunID: "pool", Rank: i}, DialConfig{})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		sessions = append(sessions, s)
		if err := s.Receive(testFrame(i, 1, 1, 1)); err != nil {
			t.Fatalf("session %d frame: %v", i, err)
		}
	}
	waitFor(t, "pool at max", func() bool { return svc.Stats().Workers == maxW })
	if st := svc.Stats(); st.PeakWorkers > maxW {
		t.Fatalf("pool exceeded MaxWorkers: %+v", st)
	}

	for _, s := range sessions {
		s.Close()
	}
	waitFor(t, "pool back at min", func() bool { return svc.Stats().Workers == 1 })
	// It must stay there: retirement respects the floor.
	time.Sleep(50 * time.Millisecond)
	if st := svc.Stats(); st.Workers != 1 {
		t.Fatalf("pool dropped below MinWorkers: %+v", st)
	}
}

func TestTenantCaps(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{
		MaxWorkers:     8,
		MaxRuns:        1,
		MaxRunSessions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	addr := svc.Addr().String()

	s1, err := Dial(addr, Hello{RunID: "only", Rank: 0}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	var ref *Refuse
	if _, err := Dial(addr, Hello{RunID: "only", Rank: 1}, DialConfig{}); !errors.As(err, &ref) || ref.Code != RefuseRunSessions {
		t.Fatalf("second session on capped run: %v, want RefuseRunSessions", err)
	}
	if _, err := Dial(addr, Hello{RunID: "other", Rank: 0}, DialConfig{}); !errors.As(err, &ref) || ref.Code != RefuseRuns {
		t.Fatalf("second run on capped service: %v, want RefuseRuns", err)
	}
	st := svc.Stats()
	if st.RefusedSessions != 1 || st.RefusedRuns != 1 {
		t.Fatalf("stats = %+v, want RefusedSessions=1 RefusedRuns=1", st)
	}

	// Releasing the session frees the slot for the same run.
	s1.Close()
	waitFor(t, "session slot freed", func() bool {
		s2, err := Dial(addr, Hello{RunID: "only", Rank: 2}, DialConfig{})
		if err != nil {
			return false
		}
		defer s2.Close()
		return s2.Ack().Flags&AckFlagResumed != 0
	})
}

func TestBadHelloRefused(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A data frame where the hello belongs is a protocol violation.
	c, err := net.Dial("tcp", svc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := bufio.NewWriter(c)
	if err := writeEnvelope(w, testFrame(0, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(c)
	payload, _, err := readEnvelope(r, nil, refuseSize)
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	ref, err := ParseRefuse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Code != RefuseBadHello {
		t.Fatalf("refusal code %d, want RefuseBadHello", ref.Code)
	}

	// An unsupported protocol version is refused the same way.
	hello := AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "v2", Rank: 0})
	hello[4] = 2 // bump version; CRC now stale too — either failure refuses
	c2, err := net.Dial("tcp", svc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	w2 := bufio.NewWriter(c2)
	if err := writeEnvelope(w2, hello); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	payload, _, err = readEnvelope(bufio.NewReader(c2), nil, refuseSize)
	if err != nil {
		t.Fatal(err)
	}
	if ref, err = ParseRefuse(payload); err != nil || ref.Code != RefuseBadHello {
		t.Fatalf("version-2 hello: ref=%+v err=%v, want RefuseBadHello", ref, err)
	}
	if st := svc.Stats(); st.RefusedBadHello != 2 {
		t.Fatalf("stats = %+v, want RefusedBadHello=2", st)
	}
}

// TestShedCountsInStatus wires the service into an obs registry and
// asserts shed/accept counts surface through both /metrics and /status.
func TestShedCountsInStatus(t *testing.T) {
	o := obs.New()
	svc, err := Listen("127.0.0.1:0", Config{
		MinWorkers:  1,
		MaxWorkers:  1,
		AcceptQueue: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	svc.SetObs(o)
	o.SetStatus(func() any { return map[string]any{"net": svc.StatusMap()} })

	addr := svc.Addr().String()
	s1, err := Dial(addr, Hello{RunID: "obs", Rank: 0}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitFor(t, "queue primed", func() bool { return svc.Stats().Accepted == 2 })
	if _, err := Dial(addr, Hello{RunID: "obs", Rank: 1}, DialConfig{}); err == nil {
		t.Fatal("third connection was not shed")
	}
	waitFor(t, "shed counted", func() bool { return svc.Stats().Shed == 1 })

	ts := httptest.NewServer(o.Handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Run struct {
			Net map[string]any `json:"net"`
		} `json:"run"`
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := body.Run.Net["shed"]; got != float64(1) {
		t.Fatalf("/status net.shed = %v, want 1", got)
	}
	if got := body.Run.Net["accepted"]; got != float64(3) {
		t.Fatalf("/status net.accepted = %v, want 3", got)
	}

	res, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, res.Body); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	metrics := sb.String()
	for _, want := range []string{"net_shed_total 1", "net_accepted_total 3"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestCloseRefusesQueued verifies shutdown drains the accept queue with
// explicit vSE1 shutdown refusals instead of dropping the sockets.
func TestCloseRefusesQueued(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{
		MinWorkers:  1,
		MaxWorkers:  1,
		AcceptQueue: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := svc.Addr().String()

	s1, err := Dial(addr, Hello{RunID: "close", Rank: 0}, DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	cq, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	waitFor(t, "conn queued", func() bool { return svc.Stats().Accepted == 2 })

	closeDone := make(chan error, 1)
	go func() { closeDone <- svc.Close() }()

	r := bufio.NewReader(cq)
	payload, _, err := readEnvelope(r, nil, refuseSize)
	if err != nil {
		t.Fatalf("queued conn read during shutdown: %v", err)
	}
	ref, err := ParseRefuse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Code != RefuseShutdown {
		t.Fatalf("refusal code %d, want RefuseShutdown", ref.Code)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := svc.Stats(); st.RefusedShutdown != 1 {
		t.Fatalf("stats = %+v, want RefusedShutdown=1", st)
	}
}

// TestSessionPipelinedSend exercises the windowed async path that the
// ingest benchmarks ride: more frames than the pipeline window, a corrupt
// frame mid-stream whose rejection must surface on Drain (not get lost in
// the ack batch), and a clean pipeline afterwards.
func TestSessionPipelinedSend(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sess, err := Dial(svc.Addr().String(), Hello{RunID: "pipe", Rank: 0}, DialConfig{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const frames = 100
	for seq := uint64(1); seq <= frames; seq++ {
		f := testFrame(0, seq, seq*2, 2)
		if seq == 37 {
			f[len(f)-1] ^= 0xFF // CRC breaks; server reject-acks, stream continues
		}
		if err := sess.SendAsync(f); err != nil {
			t.Fatalf("frame %d: %v", seq, err)
		}
	}
	if err := sess.Drain(); !errors.Is(err, ErrFrameRejected) {
		t.Fatalf("Drain = %v, want ErrFrameRejected for the corrupt frame", err)
	}
	// The rejection was consumed with the drain; the pipeline is clean again.
	if err := sess.SendAsync(testFrame(0, 101, 202, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Drain(); err != nil {
		t.Fatalf("second Drain = %v", err)
	}
	srv := svc.Tenant("pipe")
	// Frame 37 was rejected (2 records lost); everything else landed.
	if got, want := len(srv.Records()), (frames-1+1)*2; got != want {
		t.Fatalf("tenant ingested %d records, want %d", got, want)
	}
	if st := svc.Stats(); st.FramesRejected != 1 {
		t.Fatalf("FramesRejected = %d, want 1", st.FramesRejected)
	}
}

// TestRefuseErrorStrings pins the operator-facing rendering of every
// refusal code: the code name and the retry-after hint must both appear.
func TestRefuseErrorStrings(t *testing.T) {
	for code, name := range map[uint16]string{
		RefuseBusy:        "busy",
		RefuseRunSessions: "per-run session cap",
		RefuseRuns:        "run cap",
		RefuseBadHello:    "bad hello",
		RefuseShutdown:    "shutting down",
		99:                "code 99",
	} {
		r := Refuse{Version: ProtocolVersion, Code: code, RetryAfterMs: 250}
		msg := r.Error()
		if !strings.Contains(msg, name) || !strings.Contains(msg, "250ms") {
			t.Errorf("Refuse{Code:%d}.Error() = %q, want it to mention %q and 250ms", code, msg, name)
		}
	}
}

// TestOversizedEnvelopeRejected sends an envelope whose declared length
// exceeds MaxEnvelopeBytes. The server must not allocate the claimed
// buffer: it discards the payload bytes, reject-acks, and keeps the
// session usable for the next well-formed frame.
func TestOversizedEnvelopeRejected(t *testing.T) {
	svc, err := Listen("127.0.0.1:0", Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	conn, err := net.Dial("tcp", svc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	r := bufio.NewReader(conn)
	if err := writeEnvelope(w, AppendHello(nil, Hello{Version: ProtocolVersion, RunID: "big", Rank: 0})); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readEnvelope(r, nil, sessionAckSize); err != nil {
		t.Fatalf("handshake: %v", err)
	}

	// Declared length one past the cap, followed by exactly that many
	// bytes with a truthful envelope CRC: a genuine oversized frame, not
	// wire corruption, so the server drains it and keeps the session.
	const declared = MaxEnvelopeBytes + 1
	zeros := make([]byte, 32<<10)
	zcrc := uint32(0)
	for n := 0; n < declared; {
		chunk := declared - n
		if chunk > len(zeros) {
			chunk = len(zeros)
		}
		zcrc = crc32.Update(zcrc, crc32.IEEETable, zeros[:chunk])
		n += chunk
	}
	var hdr [envHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(declared))
	binary.LittleEndian.PutUint32(hdr[4:], zcrc)
	if _, err := w.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := io.CopyN(w, zeroReader{}, declared); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ack, _, err := readEnvelope(r, nil, 1)
	if err != nil {
		t.Fatalf("ack after oversized envelope: %v", err)
	}
	if len(ack) != 1 || ack[0] != frameAckReject {
		t.Fatalf("oversized envelope ack = %v, want reject", ack)
	}

	// The stream is still framed correctly: a valid frame lands.
	if err := writeEnvelope(w, testFrame(0, 1, 3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ack, _, err = readEnvelope(r, ack[:0], 1)
	if err != nil || len(ack) != 1 || ack[0] != frameAckOK {
		t.Fatalf("frame after oversized envelope: ack %v err %v", ack, err)
	}
	if got := len(svc.Tenant("big").Records()); got != 3 {
		t.Fatalf("tenant ingested %d records, want 3", got)
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}
