// Package netsrv promotes the analysis server to a real networked service:
// a binary length-prefixed protocol over TCP that reuses the `vS*` frame
// formats from internal/server/wire.go, wrapped in a session layer so one
// listener multiplexes many concurrent *runs* (tenancy above the existing
// rank sharding — each run owns its own sharded server, durability, and
// snapshot cache).
//
// The wire conversation:
//
//	client                                 server
//	------ TCP connect ------------------->
//	------ envelope(vSS1 hello) ---------->  admission (caps, queue)
//	<----- envelope(vSA1 session ack) ----   ...or envelope(vSE1 refuse)
//	------ envelope(vSF1/vSF2/vSH1) ------>  tenant server Receive
//	<----- envelope(1-byte frame ack) ----
//	------ ... pipelined frames ... ------>
//	<----- ... in-order acks ... ---------
//
// Every message travels in an *envelope*: a little-endian u32 byte length,
// a u32 IEEE CRC32 of the payload, then that many payload bytes. Payloads
// are self-describing — the first four bytes are a vS* magic (or the
// payload is the 1-byte frame-ack status) — and the session frames defined
// here (vSS1/vSA1/vSE1) carry their own CRC like the data frames they ride
// alongside. The envelope CRC is the stream-integrity armor underneath all
// of that: a flipped bit anywhere on the wire (length prefix included —
// a corrupted length mis-carves the next payload, which then fails its
// CRC) surfaces as ErrEnvelopeCorrupt, which both ends treat as
// connection-fatal. Corrupted bytes therefore never reach tenant
// accounting; the client reconnects and resumes at the durable LSN, which
// is what lets the chaos-proxy conformance suites demand *exact* equality
// with an undisturbed run even while the proxy flips bits.
//
// The accept loop is a worker pool that auto-scales between min and max
// workers on queue depth and sheds load under pressure: a full accept
// queue earns the connection an explicit vSE1 busy reply with a
// retry-after hint — never a silent drop or hang — so the client side's
// existing retry/backoff (internal/transport) engages.
package netsrv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"vsensor/internal/server"
)

// ProtocolVersion is the session-layer version carried in every vSS1
// hello; the server refuses anything else (RefuseBadHello), which is what
// lets the format evolve without ambiguity.
const ProtocolVersion = 1

// MaxRunIDLen bounds the tenancy key a hello may carry.
const MaxRunIDLen = 128

// Session-frame magics, little-endian like the vSF*/vSH1 data frames.
const (
	helloMagic  = 0x76535331 // "vSS1" — client hello, opens a session
	ackMagic    = 0x76534131 // "vSA1" — server session ack
	refuseMagic = 0x76534531 // "vSE1" — server busy/refuse + retry-after
)

// Fixed encoded sizes (the hello adds its variable-length run ID).
const (
	helloHeaderSize = 24
	sessionAckSize  = 20
	refuseSize      = 16
)

// Per-frame ack statuses: one byte per delivered data frame, in order.
const (
	frameAckOK     = 0 // ingested (or deduplicated) — the sender's ack
	frameAckReject = 1 // rejected: framing/CRC error, or oversized envelope
	frameAckDown   = 2 // tenant server is between Crash and Recover
)

// Hello is the decoded vSS1 handshake: protocol version, tenancy key, the
// sender's (primary) rank, and the LSN the client wants to resume from.
// Data frames carry their own rank field, so one session may legally relay
// frames for many ranks; Rank here names the session for metrics and caps.
//
// Layout (little endian):
//
//	off  0: u32 magic     "vSS1"
//	off  4: u16 version   ProtocolVersion
//	off  6: u16 runIDLen  1..MaxRunIDLen
//	off  8: u32 rank      primary sending rank
//	off 12: u64 resumeLSN client's resume position (0 = fresh)
//	off 20: u32 crc       IEEE CRC32 over header[0:20] + runID bytes
//	off 24: runID         runIDLen bytes, printable ASCII (0x21..0x7e)
type Hello struct {
	Version   uint16
	RunID     string
	Rank      int
	ResumeLSN uint64
}

// SessionAck is the decoded vSA1 reply accepting a hello. LSN is the run's
// current durable log-sequence number (0 for an in-memory tenant), telling
// a resuming client exactly how much of its history survived.
//
// Layout (little endian):
//
//	off  0: u32 magic   "vSA1"
//	off  4: u16 version
//	off  6: u16 flags   bit 0: run already existed (resumed tenancy)
//	off  8: u64 lsn     run's current durable LSN
//	off 16: u32 crc     IEEE CRC32 over bytes [0:16)
type SessionAck struct {
	Version uint16
	Flags   uint16
	LSN     uint64
}

// AckFlagResumed marks a session ack for a run that already existed on the
// server (another session created the tenant first, or this is a
// reconnect).
const AckFlagResumed = 1

// Refusal codes carried by vSE1.
const (
	RefuseBusy        = 1 // accept queue full — load shed
	RefuseRunSessions = 2 // per-run session cap reached
	RefuseRuns        = 3 // run (tenant) cap reached
	RefuseBadHello    = 4 // malformed/unsupported hello
	RefuseShutdown    = 5 // service is shutting down
)

// Refuse is the decoded vSE1 busy/refuse reply: the server cannot take the
// session now, and RetryAfterMs hints when to try again — the explicit
// backpressure signal that keeps clients backing off instead of hanging.
//
// Layout (little endian):
//
//	off  0: u32 magic        "vSE1"
//	off  4: u16 version
//	off  6: u16 code         Refuse* reason
//	off  8: u32 retryAfterMs backoff hint
//	off 12: u32 crc          IEEE CRC32 over bytes [0:12)
type Refuse struct {
	Version      uint16
	Code         uint16
	RetryAfterMs uint32
}

// Error renders a refusal as the client-side error Dial returns.
func (r Refuse) Error() string {
	return fmt.Sprintf("netsrv: session refused (%s), retry after %dms", refuseName(r.Code), r.RetryAfterMs)
}

func refuseName(code uint16) string {
	switch code {
	case RefuseBusy:
		return "busy: accept queue full"
	case RefuseRunSessions:
		return "per-run session cap"
	case RefuseRuns:
		return "run cap"
	case RefuseBadHello:
		return "bad hello"
	case RefuseShutdown:
		return "shutting down"
	}
	return fmt.Sprintf("code %d", code)
}

// AppendHello serializes a hello onto dst. The encoding is canonical: for
// any Hello that ParseHello accepts, re-encoding reproduces the input bytes
// exactly (the FuzzSession property).
func AppendHello(dst []byte, h Hello) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, helloHeaderSize)...)
	hdr := dst[start:]
	binary.LittleEndian.PutUint32(hdr[0:], helloMagic)
	binary.LittleEndian.PutUint16(hdr[4:], h.Version)
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(h.RunID)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(h.Rank))
	binary.LittleEndian.PutUint64(hdr[12:], h.ResumeLSN)
	dst = append(dst, h.RunID...)
	crc := crc32.ChecksumIEEE(dst[start : start+20])
	crc = crc32.Update(crc, crc32.IEEETable, dst[start+helloHeaderSize:])
	binary.LittleEndian.PutUint32(dst[start+20:], crc)
	return dst
}

// ParseHello validates a hello without trusting any field: length, magic,
// version, bounded and printable run ID, bounded rank, CRC. Arbitrary bytes
// must never panic; an accepted hello re-encodes byte-identically.
func ParseHello(data []byte) (Hello, error) {
	var h Hello
	if len(data) < helloHeaderSize {
		return h, fmt.Errorf("netsrv: short hello (%d bytes, header is %d)", len(data), helloHeaderSize)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != helloMagic {
		return h, fmt.Errorf("netsrv: bad hello magic %#x", m)
	}
	h.Version = binary.LittleEndian.Uint16(data[4:])
	if h.Version != ProtocolVersion {
		return h, fmt.Errorf("netsrv: unsupported protocol version %d (this side speaks %d)", h.Version, ProtocolVersion)
	}
	n := int(binary.LittleEndian.Uint16(data[6:]))
	if n == 0 || n > MaxRunIDLen {
		return h, fmt.Errorf("netsrv: hello run-ID length %d out of [1,%d]", n, MaxRunIDLen)
	}
	if len(data) != helloHeaderSize+n {
		return h, fmt.Errorf("netsrv: hello length %d, want %d for a %d-byte run ID", len(data), helloHeaderSize+n, n)
	}
	rank := binary.LittleEndian.Uint32(data[8:])
	if rank > server.MaxFrameRank {
		return h, fmt.Errorf("netsrv: hello claims rank %d (max %d)", rank, server.MaxFrameRank)
	}
	h.Rank = int(rank)
	h.ResumeLSN = binary.LittleEndian.Uint64(data[12:])
	id := data[helloHeaderSize:]
	for _, b := range id {
		if b < 0x21 || b > 0x7e {
			return h, fmt.Errorf("netsrv: hello run ID contains non-printable byte %#x", b)
		}
	}
	crc := crc32.ChecksumIEEE(data[:20])
	crc = crc32.Update(crc, crc32.IEEETable, id)
	if got := binary.LittleEndian.Uint32(data[20:]); got != crc {
		return h, fmt.Errorf("%w in hello: says %#x, computed %#x", server.ErrChecksum, got, crc)
	}
	h.RunID = string(id)
	return h, nil
}

// AppendSessionAck serializes a session ack onto dst (canonical encoding,
// same round-trip property as AppendHello).
func AppendSessionAck(dst []byte, a SessionAck) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, sessionAckSize)...)
	hdr := dst[start:]
	binary.LittleEndian.PutUint32(hdr[0:], ackMagic)
	binary.LittleEndian.PutUint16(hdr[4:], a.Version)
	binary.LittleEndian.PutUint16(hdr[6:], a.Flags)
	binary.LittleEndian.PutUint64(hdr[8:], a.LSN)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(hdr[:16]))
	return dst
}

// ParseSessionAck validates a vSA1 reply.
func ParseSessionAck(data []byte) (SessionAck, error) {
	var a SessionAck
	if len(data) != sessionAckSize {
		return a, fmt.Errorf("netsrv: session ack length %d, want %d", len(data), sessionAckSize)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != ackMagic {
		return a, fmt.Errorf("netsrv: bad session-ack magic %#x", m)
	}
	if got, want := binary.LittleEndian.Uint32(data[16:]), crc32.ChecksumIEEE(data[:16]); got != want {
		return a, fmt.Errorf("%w in session ack: says %#x, computed %#x", server.ErrChecksum, got, want)
	}
	a.Version = binary.LittleEndian.Uint16(data[4:])
	if a.Version != ProtocolVersion {
		return a, fmt.Errorf("netsrv: session ack version %d (this side speaks %d)", a.Version, ProtocolVersion)
	}
	a.Flags = binary.LittleEndian.Uint16(data[6:])
	a.LSN = binary.LittleEndian.Uint64(data[8:])
	return a, nil
}

// AppendRefuse serializes a vSE1 busy/refuse reply onto dst (canonical
// encoding, same round-trip property as AppendHello).
func AppendRefuse(dst []byte, r Refuse) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, refuseSize)...)
	hdr := dst[start:]
	binary.LittleEndian.PutUint32(hdr[0:], refuseMagic)
	binary.LittleEndian.PutUint16(hdr[4:], r.Version)
	binary.LittleEndian.PutUint16(hdr[6:], r.Code)
	binary.LittleEndian.PutUint32(hdr[8:], r.RetryAfterMs)
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(hdr[:12]))
	return dst
}

// ParseRefuse validates a vSE1 reply.
func ParseRefuse(data []byte) (Refuse, error) {
	var r Refuse
	if len(data) != refuseSize {
		return r, fmt.Errorf("netsrv: refuse length %d, want %d", len(data), refuseSize)
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != refuseMagic {
		return r, fmt.Errorf("netsrv: bad refuse magic %#x", m)
	}
	if got, want := binary.LittleEndian.Uint32(data[12:]), crc32.ChecksumIEEE(data[:12]); got != want {
		return r, fmt.Errorf("%w in refuse: says %#x, computed %#x", server.ErrChecksum, got, want)
	}
	r.Version = binary.LittleEndian.Uint16(data[4:])
	if r.Version != ProtocolVersion {
		return r, fmt.Errorf("netsrv: refuse version %d (this side speaks %d)", r.Version, ProtocolVersion)
	}
	r.Code = binary.LittleEndian.Uint16(data[6:])
	r.RetryAfterMs = binary.LittleEndian.Uint32(data[8:])
	return r, nil
}

// isHello reports whether an envelope payload starts with the vSS1 magic.
func isHello(data []byte) bool {
	return len(data) >= 4 && binary.LittleEndian.Uint32(data) == helloMagic
}

// ---------- envelope framing ----------

// ErrEnvelopeTooLarge marks an envelope whose declared length exceeds the
// reader's cap — the huge-allocation guard of the stream layer.
var ErrEnvelopeTooLarge = errors.New("netsrv: envelope exceeds size cap")

// ErrEnvelopeCorrupt marks an envelope whose payload bytes do not match
// the CRC in its header. Unlike a frame-level checksum failure (which is
// a per-frame reject), a corrupt envelope means the byte stream itself
// can no longer be trusted — both ends kill the connection and rely on
// reconnect + resume-LSN to redeliver.
var ErrEnvelopeCorrupt = errors.New("netsrv: envelope CRC mismatch (stream corrupt)")

// envHeaderSize is the fixed envelope prefix: u32 payload length + u32
// IEEE CRC32 of the payload.
const envHeaderSize = 8

// envHeader is a decoded envelope prefix, carried alongside
// ErrEnvelopeTooLarge so the caller can drain (and still CRC-verify) a
// payload it refused to buffer.
type envHeader struct {
	n   int
	crc uint32
}

// writeEnvelope frames one payload onto w: u32 length + u32 CRC + bytes.
// The caller decides when to Flush — that is what lets pipelined frames
// and their acks batch into large socket writes.
func writeEnvelope(w *bufio.Writer, payload []byte) error {
	// Header bytes go through WriteByte so nothing escapes to the heap —
	// this runs once per envelope on the ingest hot path.
	n := uint32(len(payload))
	crc := crc32.ChecksumIEEE(payload)
	for shift := 0; shift < 32; shift += 8 {
		if err := w.WriteByte(byte(n >> shift)); err != nil {
			return err
		}
	}
	for shift := 0; shift < 32; shift += 8 {
		if err := w.WriteByte(byte(crc >> shift)); err != nil {
			return err
		}
	}
	_, err := w.Write(payload)
	return err
}

// readEnvelope reads one framed payload into buf (reused across calls),
// enforcing the size cap BEFORE allocating and verifying the envelope CRC
// after reading. A too-large envelope returns ErrEnvelopeTooLarge with the
// decoded header so the caller can drainEnvelope the payload and keep the
// stream synchronized; a CRC mismatch returns ErrEnvelopeCorrupt, which is
// connection-fatal for every caller.
func readEnvelope(r *bufio.Reader, buf []byte, maxBytes int) ([]byte, envHeader, error) {
	var hdrBuf [envHeaderSize]byte
	if _, err := io.ReadFull(r, hdrBuf[:]); err != nil {
		return nil, envHeader{}, err
	}
	hdr := envHeader{
		n:   int(binary.LittleEndian.Uint32(hdrBuf[0:])),
		crc: binary.LittleEndian.Uint32(hdrBuf[4:]),
	}
	if hdr.n > maxBytes {
		return nil, hdr, fmt.Errorf("%w: %d bytes declared, cap %d", ErrEnvelopeTooLarge, hdr.n, maxBytes)
	}
	if cap(buf) < hdr.n {
		buf = make([]byte, hdr.n)
	}
	buf = buf[:hdr.n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, hdr, err
	}
	if got := crc32.ChecksumIEEE(buf); got != hdr.crc {
		return nil, hdr, fmt.Errorf("%w: header says %#x, payload hashes %#x", ErrEnvelopeCorrupt, hdr.crc, got)
	}
	return buf, hdr, nil
}

// drainEnvelope skips a payload readEnvelope refused to buffer, keeping
// the envelope stream aligned — but still verifies the CRC while
// discarding, because an oversized *declared* length may itself be wire
// corruption: a genuine oversized frame drains clean (per-frame reject),
// a corrupted length prefix drains dirty (ErrEnvelopeCorrupt, kill the
// connection).
func drainEnvelope(r *bufio.Reader, hdr envHeader) error {
	crc := uint32(0)
	remaining := hdr.n
	for remaining > 0 {
		chunk := remaining
		if chunk > 32<<10 {
			chunk = 32 << 10
		}
		b, err := r.Peek(chunk)
		if len(b) == 0 {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		crc = crc32.Update(crc, crc32.IEEETable, b)
		if _, err := r.Discard(len(b)); err != nil {
			return err
		}
		remaining -= len(b)
	}
	if crc != hdr.crc {
		return fmt.Errorf("%w: header says %#x, drained payload hashes %#x", ErrEnvelopeCorrupt, hdr.crc, crc)
	}
	return nil
}
