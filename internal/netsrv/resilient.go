package netsrv

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"vsensor/internal/obs"
	"vsensor/internal/server"
)

// RetryPolicy shapes dial retries: how long to keep trying, how fast the
// net-error backoff grows, and whether plain network errors are retried
// at all (vSE1 refusals with a retry-after hint always are, when the code
// is transient).
type RetryPolicy struct {
	// MaxElapsed is the total retry budget for one dial (or, inside
	// ResilientSession, one outage). Default 10s.
	MaxElapsed time.Duration

	// BackoffBase is the first sleep after a retryable failure with no
	// server hint; it doubles per attempt up to BackoffMax. Defaults
	// 5ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// NetErrors retries dial/handshake network errors too, not just
	// explicit vSE1 refusals. DialRetry defaults to false (an unreachable
	// address should fail fast); ResilientSession forces it on (an
	// outage IS a network error).
	NetErrors bool

	// Seed drives the backoff jitter deterministically.
	Seed int64
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxElapsed <= 0 {
		p.MaxElapsed = 10 * time.Second
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 5 * time.Millisecond
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = 500 * time.Millisecond
		if p.BackoffMax < p.BackoffBase {
			p.BackoffMax = p.BackoffBase
		}
	}
}

// RetryStats accounts one DialRetry call (or accumulates across a
// ResilientSession's lifetime).
type RetryStats struct {
	Attempts  int64 // dial attempts, including the successful one
	Refusals  int64 // vSE1 refusals honored (slept on the server's hint)
	BackoffNs int64 // total time slept between attempts
}

// retryableRefusal reports whether a vSE1 code describes a transient
// condition worth honoring the retry-after hint for. Bad hellos and the
// run cap are permanent from one client's point of view.
func retryableRefusal(code uint16) bool {
	switch code {
	case RefuseBusy, RefuseRunSessions, RefuseShutdown:
		return true
	}
	return false
}

// dialer is the shared retry engine behind DialRetry and
// ResilientSession.redial: dial, classify the failure, sleep the server's
// hint (refusals) or a jittered exponential backoff (net errors), repeat
// until the deadline.
type dialer struct {
	addr string
	cfg  DialConfig
	p    RetryPolicy
	rng  *rand.Rand
}

func newDialer(addr string, cfg DialConfig, p RetryPolicy) *dialer {
	p.fillDefaults()
	return &dialer{addr: addr, cfg: cfg, p: p, rng: rand.New(rand.NewSource(p.Seed ^ 0x72656469616c))}
}

func (d *dialer) dial(h Hello, deadline time.Time, st *RetryStats) (*Session, error) {
	backoff := d.p.BackoffBase
	for {
		st.Attempts++
		s, err := Dial(d.addr, h, d.cfg)
		if err == nil {
			return s, nil
		}
		var ref *Refuse
		var wait time.Duration
		switch {
		case errors.As(err, &ref):
			if !retryableRefusal(ref.Code) {
				return nil, err
			}
			st.Refusals++
			wait = time.Duration(ref.RetryAfterMs) * time.Millisecond
			if wait <= 0 {
				wait = backoff
			}
		case d.p.NetErrors:
			wait = backoff
		default:
			return nil, err
		}
		// ±25% deterministic jitter so a fleet of resuming clients does
		// not stampede the listener in lock-step.
		wait += time.Duration(d.rng.Int63n(int64(wait)/2+1)) - wait/4
		if backoff *= 2; backoff > d.p.BackoffMax {
			backoff = d.p.BackoffMax
		}
		if time.Now().Add(wait).After(deadline) {
			return nil, err
		}
		st.BackoffNs += int64(wait)
		time.Sleep(wait)
	}
}

// DialRetry is Dial with a refusal-honoring retry loop: a vSE1 busy /
// session-cap / shutdown refusal sleeps the server's retry-after hint and
// tries again within the policy budget, instead of surfacing the first
// refusal to the caller. Network errors fail fast unless p.NetErrors is
// set. The stats are returned even on failure.
func DialRetry(addr string, h Hello, cfg DialConfig, p RetryPolicy) (*Session, RetryStats, error) {
	var st RetryStats
	p.fillDefaults()
	d := newDialer(addr, cfg, p)
	s, err := d.dial(h, time.Now().Add(p.MaxElapsed), &st)
	return s, st, err
}

// ReconnectConfig shapes a ResilientSession.
type ReconnectConfig struct {
	// Addr and Hello are what every (re)dial presents; the hello's
	// ResumeLSN is overwritten on each redial with the client's current
	// durable position.
	Addr  string
	Hello Hello

	// Dial tunes each underlying connection (timeouts, window).
	Dial DialConfig

	// Retry is the per-outage budget: once a live connection breaks, the
	// session redials under this policy, and only when the budget is
	// exhausted does the failure surface (as server.ErrServerDown, so
	// transport.Link parks frames instead of dropping them). NetErrors
	// is forced on.
	Retry RetryPolicy
}

// ResilientStats snapshots a ResilientSession's ledger.
type ResilientStats struct {
	Reconnects   int64  // successful re-handshakes after a live conn broke
	DialAttempts int64  // total dials, including the first and failed ones
	Refusals     int64  // vSE1 refusals honored
	BackoffNs    int64  // total time slept in dial backoff
	Resumed      int64  // queued envelopes skipped because the resume LSN proved them processed
	Outages      int64  // operations that exhausted the retry budget
	LSN          uint64 // client's belief of the tenant's durable LSN
}

// ResilientSession is a transport.Medium that survives the network: it
// wraps Dial, auto-redials on connection loss with exponential backoff +
// jitter, honors vSE1 retry-after hints, and resumes delivery at the
// durable LSN carried by the vSA1 session ack so a reconnect neither
// loses nor duplicates journaled envelopes.
//
// The resume algorithm rides the dense-LSN contract of the durable
// server: every delivered envelope (frame ingest, dup, reject, heartbeat)
// journals exactly one outcome, so the tenant's LSN counts delivered
// envelopes. The session keeps copies of sent-but-unanswered envelopes in
// order; on reconnect, the fresh session ack's LSN minus the client's
// last-acked position says exactly how many of those the server processed
// before the wire died — that prefix is dropped (already journaled), the
// rest is retransmitted in order. Against a non-durable tenant the ack
// LSN is always 0, so everything unanswered is retransmitted and the
// server's sequence dedup absorbs the overlap: at-least-once there,
// exactly-once when durability is on.
//
// When an outage outlives the retry budget, operations fail with
// server.ErrServerDown — the same error a crashed tenant returns — so the
// transport.Link machinery parks frames and packed-flushes them when the
// world comes back.
type ResilientSession struct {
	mu   sync.Mutex
	cfg  ReconnectConfig
	d    *dialer
	sess *Session

	lsn     uint64   // belief: tenant's durable LSN after all answered envelopes
	pend    [][]byte // sent-but-unanswered envelope copies, oldest first
	sent    int      // prefix of pend transmitted on the live conn
	ackErr  error    // first non-OK status since the last report
	ever    bool     // a connection has succeeded at least once
	lastAck SessionAck

	free  [][]byte // recycled pend copies (see push)
	stats ResilientStats

	reconnects *obs.Counter
	attempts   *obs.Counter
	backoffNs  *obs.Histogram
}

// DialResilient dials the first connection eagerly (so configuration
// errors and permanent refusals surface immediately) and returns the
// self-healing session.
func DialResilient(cfg ReconnectConfig) (*ResilientSession, error) {
	cfg.Dial.fillDefaults()
	cfg.Retry.fillDefaults()
	cfg.Retry.NetErrors = true
	r := &ResilientSession{cfg: cfg, d: newDialer(cfg.Addr, cfg.Dial, cfg.Retry)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.redialLocked(time.Now().Add(cfg.Retry.MaxElapsed)); err != nil {
		return nil, err
	}
	return r, nil
}

// SetObs mirrors reconnect activity into an observability registry.
func (r *ResilientSession) SetObs(o *obs.Obs) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reconnects = o.Counter("net_reconnects_total")
	r.attempts = o.Counter("net_dial_attempts_total")
	r.backoffNs = o.Histogram("net_dial_backoff_ns")
}

// Ack returns the most recent vSA1 session ack (the latest successful
// handshake's flags and durable LSN).
func (r *ResilientSession) Ack() SessionAck {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastAck
}

// Stats snapshots the reconnect ledger.
func (r *ResilientSession) Stats() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.LSN = r.lsn
	return st
}

// ResyncLSN overrides the client's durable-position belief. A crash
// harness calls this after recovering a tenant whose WAL tail was lost:
// acked-but-unsynced outcomes vanished, so the belief must rewind to the
// recovered LSN before re-driving the schedule (mirroring what any
// checkpoint-resuming producer does).
func (r *ResilientSession) ResyncLSN(lsn uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lsn = lsn
}

// onAck observes every ack in arrival order. It runs on the calling
// goroutine, inside a Session operation, while r.mu is held by that same
// caller — the oldest unanswered envelope is the one being answered.
func (r *ResilientSession) onAck(status byte) {
	if len(r.pend) > 0 {
		head := r.pend[0]
		r.pend = r.pend[1:]
		if len(r.pend) == 0 {
			r.pend = nil // release the backing array
		}
		if r.sent > 0 {
			r.sent--
		}
		// The envelope was fully written before its ack arrived, so its
		// copy can be recycled into the next push.
		if len(r.free) < pendFreeMax {
			r.free = append(r.free, head)
		}
	}
	switch status {
	case frameAckOK:
		r.lsn++
	case frameAckReject:
		r.lsn++ // a reject is journaled too (dense LSN)
		if r.ackErr == nil {
			r.ackErr = ErrFrameRejected
		}
	case frameAckDown:
		// Not journaled: the tenant was between Crash and Recover.
		if r.ackErr == nil {
			r.ackErr = server.ErrServerDown
		}
	}
}

// redialLocked establishes a fresh connection within the deadline and
// reconciles the unanswered queue against the server's durable position.
func (r *ResilientSession) redialLocked(deadline time.Time) error {
	h := r.cfg.Hello
	h.ResumeLSN = r.lsn
	var st RetryStats
	s, err := r.d.dial(h, deadline, &st)
	r.stats.DialAttempts += st.Attempts
	r.stats.Refusals += st.Refusals
	r.stats.BackoffNs += st.BackoffNs
	if r.attempts != nil {
		r.attempts.Add(st.Attempts)
	}
	if r.backoffNs != nil && st.BackoffNs > 0 {
		r.backoffNs.ObserveInt(st.BackoffNs)
	}
	if err != nil {
		r.stats.Outages++
		return err
	}
	s.ackHook = r.onAck
	r.sess = s
	r.lastAck = s.Ack()
	if r.ever {
		r.stats.Reconnects++
		if r.reconnects != nil {
			r.reconnects.Inc()
		}
	}
	r.ever = true
	// Reconcile: the ack's LSN is the server's truth. Anything it has
	// journaled beyond our belief must be the oldest unanswered envelopes,
	// delivered in order before the previous wire died — drop them instead
	// of re-sending. A *lower* LSN (crash truncation, or a non-durable
	// tenant's flat 0) means re-send everything unanswered and let
	// sequence dedup absorb any overlap.
	if processed := r.lastAck.LSN - r.lsn; r.lastAck.LSN > r.lsn {
		if processed > uint64(len(r.pend)) {
			processed = uint64(len(r.pend))
		}
		r.pend = r.pend[processed:]
		r.stats.Resumed += int64(processed)
	}
	r.lsn = r.lastAck.LSN
	r.sent = 0
	return nil
}

// dropSessLocked abandons a broken connection.
func (r *ResilientSession) dropSessLocked() {
	if r.sess != nil {
		_ = r.sess.Close()
		r.sess = nil
	}
	r.sent = 0
}

// transmitLocked pushes untransmitted queued envelopes onto the live
// session, optionally draining all outstanding acks. Ack arrivals pop the
// queue via onAck as a side effect of the Session calls.
func (r *ResilientSession) transmitLocked(drain bool) error {
	s := r.sess
	for r.sent < len(r.pend) {
		next := r.pend[r.sent]
		if err := s.SendAsync(next); err != nil {
			return err
		}
		r.sent++
	}
	if drain {
		return s.Drain()
	}
	return nil
}

// opLocked is the self-healing core: keep a connection alive, transmit
// the queue, and on transport failure redial-and-retransmit until the
// per-outage budget is gone. Protocol-level statuses (reject/down) are
// captured by onAck and surfaced; they never trigger a redial.
func (r *ResilientSession) opLocked(drain bool) error {
	// The outage deadline is read lazily: a healthy session never pays
	// for the clock, and the budget spans this operation's redials only.
	var deadline time.Time
	for {
		if r.sess == nil {
			if deadline.IsZero() {
				deadline = time.Now().Add(r.d.p.MaxElapsed)
			}
			if err := r.redialLocked(deadline); err != nil {
				return server.ErrServerDown
			}
		}
		err := r.transmitLocked(drain)
		if err != nil && r.sess.Broken() != nil {
			r.dropSessLocked()
			continue
		}
		e := r.ackErr
		r.ackErr = nil
		return e
	}
}

// pendFreeMax bounds the recycled-buffer stack fed by acked queue
// entries. It must cover a full pipeline window (acks arrive in bursts
// that pop up to Window entries at once) or the steady state degenerates
// to allocating on most pushes.
const pendFreeMax = 320

// push copies one frame into the unanswered queue (the copy is what gets
// retransmitted after a reconnect — the caller may reuse its buffer).
// Acked entries' buffers are recycled to keep the steady-state path to
// one memcpy with no allocation.
func (r *ResilientSession) push(encoded []byte) []byte {
	var cp []byte
	if n := len(r.free); n > 0 && cap(r.free[n-1]) >= len(encoded) {
		cp = append(r.free[n-1][:0], encoded...)
		r.free = r.free[:n-1]
	} else {
		cp = append([]byte(nil), encoded...)
	}
	r.pend = append(r.pend, cp)
	return cp
}

// unpush removes the caller's own entry after a failed synchronous
// operation, so the caller's retry does not double-queue it. The entry is
// the queue tail iff no ack or resume already consumed it.
func (r *ResilientSession) unpush(cp []byte) {
	if n := len(r.pend); n > 0 && len(cp) > 0 {
		tail := r.pend[n-1]
		if len(tail) == len(cp) && &tail[0] == &cp[0] {
			r.pend = r.pend[:n-1]
			if r.sent > n-1 {
				r.sent = n - 1
			}
		}
	}
}

// Receive sends one encoded vS* frame and waits for its ack, redialing
// through connection failures — the transport.Medium contract. The
// outcome is exact: nil or ErrFrameRejected means the envelope was
// delivered and journaled exactly once (possibly proven by the resume
// LSN rather than an explicit ack); server.ErrServerDown means it was
// not delivered and the caller owns the retry — the frame is not left
// queued.
func (r *ResilientSession) Receive(encoded []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ackErr = nil
	cp := r.push(encoded)
	err := r.opLocked(true)
	if err != nil && !errors.Is(err, ErrFrameRejected) {
		r.unpush(cp)
	}
	return err
}

// SendAsync queues one frame on the pipelined path without waiting for
// its ack; protocol-level failures surface on a later call or on Drain.
// Unlike Receive, a reported outage does NOT unqueue the frame: an async
// frame may already be in flight when the error belongs to an older one,
// so abandoning it would corrupt the in-order ledger. The queue is
// retransmitted by the next operation once the server is back.
func (r *ResilientSession) SendAsync(encoded []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(encoded)
	return r.opLocked(false)
}

// Drain retransmits anything unanswered and consumes every outstanding
// ack, reporting the first failure the pipeline saw since the last
// report.
func (r *ResilientSession) Drain() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opLocked(true)
}

// Close tears down the live connection (after a best-effort drain) and
// stops reconnecting.
func (r *ResilientSession) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sess == nil {
		return nil
	}
	_ = r.transmitLocked(true)
	err := r.sess.Close()
	r.sess = nil
	return err
}
