package netsrv

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vsensor/internal/server"
)

// ErrFrameRejected is what a frameAckReject status surfaces as on the
// client: the server parsed the envelope but refused the frame (bad CRC,
// bad header, oversized envelope).
var ErrFrameRejected = errors.New("netsrv: server rejected frame")

// DialConfig tunes Dial and the session it produces.
type DialConfig struct {
	// Timeout bounds the TCP connect plus the hello/ack exchange.
	// Default 5s.
	Timeout time.Duration

	// Window is the pipelining depth for SendAsync: how many frames may
	// be in flight before the sender must consume an ack. Default 256.
	Window int

	// OpTimeout is the per-operation I/O deadline after the handshake:
	// every socket write and every blocking ack read must make progress
	// within this window, so a dead or stalled peer surfaces as a timeout
	// error instead of pinning the sender forever. It must be generous
	// enough to cover one full frame write plus a server round trip.
	// Default 10s; negative disables deadlines entirely.
	OpTimeout time.Duration
}

func (c *DialConfig) fillDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.OpTimeout == 0 {
		c.OpTimeout = 10 * time.Second
	}
}

// Session is one client-side connection to a Service, speaking the
// envelope protocol for a single run. Its synchronous Receive implements
// transport.Medium, so a fault-injecting transport.Link can proxy straight
// onto the wire; SendAsync/Drain is the pipelined path for bulk senders
// that cannot afford one round trip per frame.
//
// Session is safe for concurrent use: a transport.Link shared by many rank
// goroutines funnels all of their delivery attempts into one Session, so
// the frame/ack exchange serializes under an internal lock (matching the
// in-process server, whose Receive is also internally synchronized).
//
// A Session distinguishes two failure classes. Protocol-level statuses
// (ErrFrameRejected, server.ErrServerDown) describe one frame's fate on a
// healthy connection. Transport-level failures (write errors, ack-read
// errors, envelope corruption, deadline expiry) poison the session: the
// first one is remembered and every later call fails fast with it instead
// of writing into a broken pipe — Broken exposes it so a resilient
// wrapper can decide to redial.
type Session struct {
	mu        sync.Mutex
	conn      net.Conn
	r         *bufio.Reader
	w         *bufio.Writer
	ack       SessionAck
	window    int
	opTimeout time.Duration
	readDl    time.Time // last armed read deadline (freshness gate)
	writeDl   time.Time // last armed write deadline (freshness gate)
	inflight  int
	pendErr   error // first non-OK ack status seen by the async path
	connErr   error // sticky transport failure; poisons all later calls
	ackBuf    []byte
	closed    atomic.Bool

	// ackHook, when set (by ResilientSession, same package), observes
	// every ack status in arrival order before it is mapped to an error.
	// It runs on the calling goroutine while the session lock is held.
	ackHook func(status byte)
}

// Dial connects to a Service and performs the vSS1 handshake for h
// (h.Version defaults to ProtocolVersion). A vSE1 refusal comes back as a
// *Refuse error — errors.As(err, &Refuse{}) exposes the code and the
// retry-after hint. Every handshake-failure path closes the TCP
// connection exactly once, here.
func Dial(addr string, h Hello, cfg DialConfig) (*Session, error) {
	cfg.fillDefaults()
	if h.Version == 0 {
		h.Version = ProtocolVersion
	}
	if len(h.RunID) == 0 || len(h.RunID) > MaxRunIDLen {
		return nil, fmt.Errorf("netsrv: run ID length %d out of [1,%d]", len(h.RunID), MaxRunIDLen)
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	s, err := handshake(conn, h, cfg)
	if err != nil {
		_ = conn.Close() // the single close site for failed handshakes
		return nil, err
	}
	return s, nil
}

// handshake runs the hello/ack exchange on an open connection. It never
// closes conn — Dial owns that on failure.
func handshake(conn net.Conn, h Hello, cfg DialConfig) (*Session, error) {
	s := &Session{
		conn:      conn,
		r:         bufio.NewReaderSize(conn, 64<<10),
		w:         bufio.NewWriterSize(conn, 64<<10),
		window:    cfg.Window,
		opTimeout: cfg.OpTimeout,
	}
	_ = conn.SetDeadline(time.Now().Add(cfg.Timeout))
	if err := writeEnvelope(s.w, AppendHello(nil, h)); err != nil {
		return nil, err
	}
	if err := s.w.Flush(); err != nil {
		return nil, err
	}
	payload, _, err := readEnvelope(s.r, nil, refuseSize+sessionAckSize)
	if err != nil {
		return nil, fmt.Errorf("netsrv: handshake read: %w", err)
	}
	if len(payload) == refuseSize {
		if ref, perr := ParseRefuse(payload); perr == nil {
			return nil, &ref
		}
	}
	ack, err := ParseSessionAck(payload)
	if err != nil {
		return nil, err
	}
	// Steady state runs on per-operation deadlines (armRead/armWrite),
	// not the handshake deadline; clear it so a stale one cannot fire.
	_ = conn.SetDeadline(time.Time{})
	s.ack = ack
	return s, nil
}

// Ack returns the server's session ack: the run's durable LSN and whether
// the run already existed.
func (s *Session) Ack() SessionAck { return s.ack }

// Broken returns the sticky transport error that poisoned the session, or
// nil while the connection is still believed healthy. Protocol-level
// per-frame statuses (reject/down) never poison.
func (s *Session) Broken() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.connErr
}

// fail records the first transport-level failure and returns it; later
// calls keep failing with the original cause.
func (s *Session) fail(err error) error {
	if s.connErr == nil {
		s.connErr = err
	}
	return err
}

// armRead and armWrite set the per-operation socket deadlines — the
// dead-peer defense. Each blocking read and each operation's writes must
// make progress within opTimeout. Re-arming is freshness-gated: the
// deadline is pushed out only once it has decayed below opTimeout/2, so
// the effective bound on any single blocking call stays within
// [opTimeout/2, opTimeout] while the hot path skips almost all of the
// runtime-timer churn a per-call SetDeadline would cost.
func (s *Session) armRead() {
	if s.opTimeout <= 0 {
		return
	}
	now := time.Now()
	if s.readDl.Sub(now) > s.opTimeout/2 {
		return
	}
	s.readDl = now.Add(s.opTimeout)
	_ = s.conn.SetReadDeadline(s.readDl)
}

func (s *Session) armWrite() {
	if s.opTimeout <= 0 {
		return
	}
	now := time.Now()
	if s.writeDl.Sub(now) > s.opTimeout/2 {
		return
	}
	s.writeDl = now.Add(s.opTimeout)
	_ = s.conn.SetWriteDeadline(s.writeDl)
}

// Receive sends one encoded vS* frame and waits for its ack — the
// transport.Medium contract, one round trip per frame. Ack statuses map
// onto the same errors the in-process server returns, so everything built
// on those errors (retry classification, ErrServerDown backpressure
// packing) works identically over the wire.
func (s *Session) Receive(encoded []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.connErr != nil {
		return s.connErr
	}
	if err := s.drainLocked(); err != nil {
		return err
	}
	s.armWrite()
	if err := writeEnvelope(s.w, encoded); err != nil {
		return s.fail(err)
	}
	if err := s.w.Flush(); err != nil {
		return s.fail(err)
	}
	return s.readAck()
}

// SendAsync queues one encoded frame without waiting for its ack, reading
// an old ack only when the pipeline window is full. Protocol-level ack
// failures surface on a later SendAsync or on Drain; a transport-level
// write failure poisons the session and is returned immediately, so
// callers fail fast instead of pumping frames into a broken pipe.
func (s *Session) SendAsync(encoded []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.connErr != nil {
		return s.connErr
	}
	// Consume whatever acks already sit in the local read buffer — the
	// server batches them, and draining here keeps the window open so the
	// writer flushes on its own buffer boundary instead of once per frame.
	s.drainBuffered()
	if s.inflight >= s.window {
		s.armWrite()
		if err := s.w.Flush(); err != nil {
			return s.fail(err)
		}
		if err := s.readAck(); err != nil {
			if s.connErr != nil {
				return err
			}
			if s.pendErr == nil {
				s.pendErr = err
			}
		}
		s.drainBuffered()
	}
	s.armWrite()
	if err := writeEnvelope(s.w, encoded); err != nil {
		return s.fail(err)
	}
	s.inflight++
	return nil
}

// Drain flushes queued frames and consumes every outstanding ack,
// returning the first failure the pipeline saw.
func (s *Session) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.connErr != nil {
		return s.connErr
	}
	return s.drainLocked()
}

func (s *Session) drainLocked() error {
	if s.inflight > 0 {
		s.armWrite()
		if err := s.w.Flush(); err != nil {
			return s.fail(err)
		}
	}
	for s.inflight > 0 {
		if err := s.readAck(); err != nil {
			if s.connErr != nil {
				return err // transport broken: no more acks are coming
			}
			if s.pendErr == nil {
				s.pendErr = err
			}
		}
	}
	err := s.pendErr
	s.pendErr = nil
	return err
}

// drainBuffered consumes acks that can be read without touching the
// socket: a full ack envelope is envHeaderSize+1 bytes.
func (s *Session) drainBuffered() {
	for s.inflight > 0 && s.connErr == nil && s.r.Buffered() >= envHeaderSize+1 {
		if err := s.readAck(); err != nil && s.connErr == nil && s.pendErr == nil {
			s.pendErr = err
		}
	}
}

// readAck consumes one 1-byte ack envelope and maps it to an error.
// Anything other than a clean, known status is a stream-integrity failure
// and poisons the session.
func (s *Session) readAck() error {
	if s.connErr != nil {
		return s.connErr
	}
	if s.inflight > 0 {
		s.inflight--
	}
	s.armRead()
	payload, _, err := readEnvelope(s.r, s.ackBuf, 1)
	if err != nil {
		return s.fail(fmt.Errorf("netsrv: ack read: %w", err))
	}
	s.ackBuf = payload[:0]
	if len(payload) != 1 {
		return s.fail(fmt.Errorf("netsrv: ack envelope has %d bytes, want 1", len(payload)))
	}
	status := payload[0]
	if status > frameAckDown {
		return s.fail(fmt.Errorf("netsrv: unknown ack status %d", status))
	}
	if s.ackHook != nil {
		s.ackHook(status)
	}
	switch status {
	case frameAckDown:
		return server.ErrServerDown
	case frameAckReject:
		return ErrFrameRejected
	default:
		return nil
	}
}

// Close tears down the connection. It is idempotent and safe to call
// concurrently with a blocked operation (the close interrupts it).
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	return s.conn.Close()
}
