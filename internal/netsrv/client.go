package netsrv

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"vsensor/internal/server"
)

// ErrFrameRejected is what a frameAckReject status surfaces as on the
// client: the server parsed the envelope but refused the frame (bad CRC,
// bad header, oversized envelope).
var ErrFrameRejected = errors.New("netsrv: server rejected frame")

// DialConfig tunes Dial and the session it produces.
type DialConfig struct {
	// Timeout bounds the TCP connect plus the hello/ack exchange.
	// Default 5s.
	Timeout time.Duration

	// Window is the pipelining depth for SendAsync: how many frames may
	// be in flight before the sender must consume an ack. Default 256.
	Window int
}

func (c *DialConfig) fillDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 256
	}
}

// Session is one client-side connection to a Service, speaking the
// envelope protocol for a single run. Its synchronous Receive implements
// transport.Medium, so a fault-injecting transport.Link can proxy straight
// onto the wire; SendAsync/Drain is the pipelined path for bulk senders
// that cannot afford one round trip per frame.
//
// Session is safe for concurrent use: a transport.Link shared by many rank
// goroutines funnels all of their delivery attempts into one Session, so
// the frame/ack exchange serializes under an internal lock (matching the
// in-process server, whose Receive is also internally synchronized).
type Session struct {
	mu       sync.Mutex
	conn     net.Conn
	r        *bufio.Reader
	w        *bufio.Writer
	ack      SessionAck
	window   int
	inflight int
	pendErr  error // first non-OK ack status seen by the async path
	ackBuf   []byte
}

// Dial connects to a Service and performs the vSS1 handshake for h
// (h.Version defaults to ProtocolVersion). A vSE1 refusal comes back as a
// *Refuse error — errors.As(err, &Refuse{}) exposes the code and the
// retry-after hint.
func Dial(addr string, h Hello, cfg DialConfig) (*Session, error) {
	cfg.fillDefaults()
	if h.Version == 0 {
		h.Version = ProtocolVersion
	}
	if len(h.RunID) == 0 || len(h.RunID) > MaxRunIDLen {
		return nil, fmt.Errorf("netsrv: run ID length %d out of [1,%d]", len(h.RunID), MaxRunIDLen)
	}
	conn, err := net.DialTimeout("tcp", addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	s := &Session{
		conn:   conn,
		r:      bufio.NewReaderSize(conn, 64<<10),
		w:      bufio.NewWriterSize(conn, 64<<10),
		window: cfg.Window,
	}
	deadline := time.Now().Add(cfg.Timeout)
	_ = conn.SetDeadline(deadline)
	if err := writeEnvelope(s.w, AppendHello(nil, h)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := s.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	payload, _, err := readEnvelope(s.r, nil, refuseSize+sessionAckSize)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netsrv: handshake read: %w", err)
	}
	if len(payload) == refuseSize {
		if ref, perr := ParseRefuse(payload); perr == nil {
			conn.Close()
			return nil, &ref
		}
	}
	ack, err := ParseSessionAck(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	s.ack = ack
	return s, nil
}

// Ack returns the server's session ack: the run's durable LSN and whether
// the run already existed.
func (s *Session) Ack() SessionAck { return s.ack }

// Receive sends one encoded vS* frame and waits for its ack — the
// transport.Medium contract, one round trip per frame. Ack statuses map
// onto the same errors the in-process server returns, so everything built
// on those errors (retry classification, ErrServerDown backpressure
// packing) works identically over the wire.
func (s *Session) Receive(encoded []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.drainLocked(); err != nil {
		return err
	}
	if err := writeEnvelope(s.w, encoded); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.readAck()
}

// SendAsync queues one encoded frame without waiting for its ack, reading
// an old ack only when the pipeline window is full. Ack failures surface
// on a later SendAsync or on Drain.
func (s *Session) SendAsync(encoded []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Consume whatever acks already sit in the local read buffer — the
	// server batches them, and draining here keeps the window open so the
	// writer flushes on its own buffer boundary instead of once per frame.
	s.drainBuffered()
	if s.inflight >= s.window {
		if err := s.w.Flush(); err != nil {
			return err
		}
		if err := s.readAck(); err != nil && s.pendErr == nil {
			s.pendErr = err
		}
		s.drainBuffered()
	}
	if err := writeEnvelope(s.w, encoded); err != nil {
		return err
	}
	s.inflight++
	return nil
}

// Drain flushes queued frames and consumes every outstanding ack,
// returning the first failure the pipeline saw.
func (s *Session) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainLocked()
}

func (s *Session) drainLocked() error {
	if s.inflight > 0 {
		if err := s.w.Flush(); err != nil {
			return err
		}
	}
	for s.inflight > 0 {
		if err := s.readAck(); err != nil && s.pendErr == nil {
			s.pendErr = err
		}
	}
	err := s.pendErr
	s.pendErr = nil
	return err
}

// drainBuffered consumes acks that can be read without touching the
// socket: a full ack envelope is 5 bytes (u32 length prefix + status).
func (s *Session) drainBuffered() {
	for s.inflight > 0 && s.r.Buffered() >= 5 {
		if err := s.readAck(); err != nil && s.pendErr == nil {
			s.pendErr = err
		}
	}
}

// readAck consumes one 1-byte ack envelope and maps it to an error.
func (s *Session) readAck() error {
	if s.inflight > 0 {
		s.inflight--
	}
	payload, _, err := readEnvelope(s.r, s.ackBuf, 1)
	if err != nil {
		return fmt.Errorf("netsrv: ack read: %w", err)
	}
	s.ackBuf = payload[:0]
	if len(payload) != 1 {
		return fmt.Errorf("netsrv: ack envelope has %d bytes, want 1", len(payload))
	}
	switch payload[0] {
	case frameAckOK:
		return nil
	case frameAckDown:
		return server.ErrServerDown
	case frameAckReject:
		return ErrFrameRejected
	default:
		return fmt.Errorf("netsrv: unknown ack status %d", payload[0])
	}
}

// Close tears down the connection.
func (s *Session) Close() error { return s.conn.Close() }
