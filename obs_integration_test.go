package vsensor_test

// End-to-end tests of the self-observability layer: a real pipeline run
// with Options.Obs attached must populate the metric families, produce one
// span per pipeline stage and per rank, serve /metrics//status//records
// over HTTP, and — crucially — leave the simulated virtual time untouched.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	vsensor "vsensor"
	"vsensor/internal/obs"
)

const obsTestSrc = `
func main() {
    float acc = 0.0;
    for (int i = 0; i < 120; i++) {
        for (int k = 0; k < 16; k++) {
            flops(1500);
        }
        acc = mpi_allreduce(acc, 8);
        mpi_barrier();
    }
}`

func runWithObs(t *testing.T) (*vsensor.Report, *obs.Obs) {
	t.Helper()
	o := obs.New()
	rep, err := vsensor.Run(obsTestSrc, vsensor.Options{Ranks: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	return rep, o
}

func TestObsDoesNotPerturbVirtualTime(t *testing.T) {
	plain, err := vsensor.Run(obsTestSrc, vsensor.Options{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	instrumented, o := runWithObs(t)
	if plain.Result.TotalNs != instrumented.Result.TotalNs {
		t.Errorf("obs changed virtual time: %d vs %d ns",
			plain.Result.TotalNs, instrumented.Result.TotalNs)
	}
	if o.Tracer().Len() == 0 {
		t.Error("no spans recorded")
	}
}

func TestObsMetricFamiliesPopulated(t *testing.T) {
	rep, o := runWithObs(t)
	var sb strings.Builder
	if err := o.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"vm_records_total",
		"vm_steps_total",
		"vm_probe_ns_total",
		"vm_time_ns_total{kind=\"comp\"}",
		"detect_records_total{rank=\"0\"}",
		"detect_slices_total{rank=\"0\"}",
		"server_messages_total",
		"server_bytes_total",
		"server_batch_bytes_count",
		"mpi_collectives_total{kind=\"allreduce\"}",
		"mpi_collectives_total{kind=\"barrier\"}",
		"cluster_cost_calls_total{kind=\"compute\"}",
		"run_ranks 4",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("metrics missing %q", fam)
		}
	}
	// Cross-check counters against the report's own accounting.
	var totalRecords int
	for _, rs := range rep.Result.Ranks {
		totalRecords += rs.Records
	}
	if got := o.Registry().Counter("vm_records_total").Value(); got != int64(totalRecords) {
		t.Errorf("vm_records_total = %d, want %d", got, totalRecords)
	}
	if got := o.Registry().Counter("server_bytes_total").Value(); got != rep.Server.BytesReceived() {
		t.Errorf("server_bytes_total = %d, want %d", got, rep.Server.BytesReceived())
	}
	if got := o.Registry().Counter("server_messages_total").Value(); got != rep.Server.Messages() {
		t.Errorf("server_messages_total = %d, want %d", got, rep.Server.Messages())
	}
}

func TestObsPipelineSpans(t *testing.T) {
	_, o := runWithObs(t)
	names := o.Tracer().SpanNames()
	for _, want := range []string{"compile", "identify", "instrument", "execute", "finalize", "rank"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing span %q (have %v)", want, names)
		}
	}
	// 5 stage spans + one per rank.
	if got := o.Tracer().Len(); got != 5+4 {
		t.Errorf("span count = %d, want 9", got)
	}
	var buf bytes.Buffer
	if err := o.Tracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
}

func TestObsLiveEndpointAgainstRun(t *testing.T) {
	rep, o := runWithObs(t)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	fetch := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// /metrics: parseable line-by-line.
	for _, line := range strings.Split(strings.TrimSpace(fetch("/metrics")), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Fatalf("non-numeric metric value in %q", line)
		}
	}

	// /status: valid JSON including the server's Progress.
	var st struct {
		Running bool `json:"running"`
		Run     struct {
			Ranks    int `json:"ranks"`
			Sensors  int `json:"sensors"`
			Progress struct {
				Records       int   `json:"Records"`
				LatestSliceNs int64 `json:"LatestSliceNs"`
			} `json:"progress"`
			PerRank []struct {
				Rank    int `json:"Rank"`
				Records int `json:"Records"`
			} `json:"per_rank"`
		} `json:"run"`
	}
	if err := json.Unmarshal([]byte(fetch("/status")), &st); err != nil {
		t.Fatalf("/status invalid JSON: %v", err)
	}
	if !st.Running || st.Run.Ranks != 4 {
		t.Errorf("status = %+v", st)
	}
	if st.Run.Progress.Records != len(rep.Server.Records()) {
		t.Errorf("status records = %d, want %d", st.Run.Progress.Records, len(rep.Server.Records()))
	}
	if len(st.Run.PerRank) == 0 {
		t.Error("status missing per-rank progress")
	}

	// /records: incremental cursor returns each record exactly once.
	type recResp struct {
		Cursor  int               `json:"cursor"`
		Records []json.RawMessage `json:"records"`
	}
	var r1 recResp
	if err := json.Unmarshal([]byte(fetch("/records?cursor=0")), &r1); err != nil {
		t.Fatal(err)
	}
	total := len(rep.Server.Records())
	if len(r1.Records) != total || r1.Cursor != total {
		t.Fatalf("first poll: %d records cursor %d, want %d", len(r1.Records), r1.Cursor, total)
	}
	var r2 recResp
	if err := json.Unmarshal([]byte(fetch("/records?cursor="+strconv.Itoa(r1.Cursor))), &r2); err != nil {
		t.Fatal(err)
	}
	if len(r2.Records) != 0 || r2.Cursor != total {
		t.Errorf("re-poll returned %d records (cursor %d): records must be delivered exactly once",
			len(r2.Records), r2.Cursor)
	}
}

// TestObsUninstrumentedRun: observability must work (and stay nil-safe)
// on baseline runs that skip instrumentation and the analysis server.
func TestObsUninstrumentedRun(t *testing.T) {
	o := obs.New()
	_, err := vsensor.Run(obsTestSrc, vsensor.Options{Ranks: 2, Uninstrumented: true, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if o.Registry().Counter("vm_steps_total").Value() == 0 {
		t.Error("vm_steps_total not populated on uninstrumented run")
	}
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/records")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"records":[]`) {
		t.Errorf("/records without a server = %d %s", resp.StatusCode, body)
	}
}
