// Command quickstart runs the vSensor pipeline end-to-end on a tiny
// program: identify fixed-workload snippets, instrument them, execute on a
// simulated 8-rank cluster, and print the identification results, the
// instrumented source, and the run summary.
package main

import (
	"fmt"
	"log"
	"time"

	vsensor "vsensor"
	"vsensor/internal/analysis"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
)

const src = `
global int STEPS = 40;

func kernel(int n) {
    for (int i = 0; i < n; i++) {
        flops(2000);
        mem(500);
    }
}

func exchange(int rank, int size) {
    int peer = rank + 1;
    if (rank % 2 == 1) {
        peer = rank - 1;
    }
    if (peer >= size) {
        peer = rank;
    }
    mpi_sendrecv(peer, 4096, 1.0);
}

func main() {
    int rank = mpi_comm_rank();
    int size = mpi_comm_size();
    for (int step = 0; step < STEPS; step++) {
        kernel(32);
        exchange(rank, size);
        mpi_allreduce(16, 1.0);
    }
}
`

func main() {
	// Step 1-2: compile and identify v-sensors (paper §3).
	res, err := vsensor.Analyze(src, analysis.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snippets: %d   v-sensors: %d   global v-sensors: %d\n",
		len(res.Snippets), len(res.Sensors), len(res.GlobalSensors))
	for _, s := range res.GlobalSensors {
		fmt.Printf("  global sensor %-4s in %-10s type=%-4s processFixed=%v deps=%s\n",
			s.ID(), s.Func.Name, s.Type, s.ProcessFixed, s.Deps)
	}

	// Step 3-4: map to source and instrument (paper §4).
	instrumented, err := vsensor.InstrumentSource(src, analysis.Config{}, instrument.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- instrumented source ---")
	fmt.Println(instrumented)

	// Step 5-8: run, analyze on-line, report (paper §5).
	rep, err := vsensor.Run(src, vsensor.Options{Ranks: 8, CollectRecords: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- run summary ---\n")
	fmt.Printf("virtual execution time: %.3f ms\n", rep.TotalSeconds()*1e3)
	fmt.Printf("instrumented sensors:   %s\n", rep.Instrumented.TypeSummary())
	fmt.Printf("records collected:      %d\n", len(rep.Records))
	fmt.Printf("data sent to server:    %d bytes in %d messages\n",
		rep.DataVolume(), rep.Server.Messages())
	d := rep.Distribution()
	fmt.Printf("sense coverage:         %.1f%%\n", d.Coverage()*100)
	fmt.Printf("sense frequency:        %.1f kHz\n", d.FrequencyHz()/1e3)
	fmt.Printf("variance events:        %d (clean cluster)\n", len(rep.Events()))

	if m := rep.Matrices(500 * time.Microsecond)[ir.Computation]; m != nil {
		fmt.Println("\n--- computation performance matrix ---")
		fmt.Print(m.ASCII(16, 64))
	}
}
