// Command badnode reproduces the paper's Fig. 21 case study: mini-CG runs
// on 256 ranks where one node has degraded memory performance (55% of
// nominal, like the bad Tianhe-2 node the paper found). The computation
// performance matrix shows a persistent low band at that node's ranks, the
// inter-process analysis flags the same ranks, and re-running without the
// bad node recovers ~20% of the execution time.
package main

import (
	"fmt"
	"log"
	"time"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/ir"
)

func main() {
	const (
		ranks        = 256
		ranksPerNode = 8
		badNode      = 12 // hosts ranks 96..103, near "process 100" like Fig. 21
	)
	app := apps.MustGet("CG", apps.Scale{Iters: 120, Work: 120})

	run := func(withBadNode bool) *vsensor.Report {
		cl := cluster.New(cluster.Config{Nodes: ranks / ranksPerNode, RanksPerNode: ranksPerNode})
		if withBadNode {
			cl.SetNodeMemSpeed(badNode, 0.55)
		}
		rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: cl})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	bad := run(true)
	fmt.Printf("CG on %d ranks with a slow-memory node: %.3f ms\n", ranks, bad.TotalSeconds()*1e3)

	m := bad.Matrices(2 * time.Millisecond)[ir.Computation]
	fmt.Println("\ncomputation performance matrix (low band = bad node):")
	fmt.Print(m.ASCII(32, 72))

	for _, band := range m.LowRankBands(0.85, 0.5) {
		first, last := band.First, band.Last
		fmt.Printf("\npersistent low band: ranks %d-%d (mean perf %.2f) -> node %d\n",
			first, last, band.MeanPerf, first/ranksPerNode)
	}
	outliers := bad.Server.InterProcessOutliers(0.85)
	flagged := map[int]bool{}
	for _, o := range outliers {
		flagged[o.Rank] = true
	}
	fmt.Printf("inter-process analysis flagged %d ranks as outliers\n", len(flagged))

	good := run(false)
	improvement := 1 - good.TotalSeconds()/bad.TotalSeconds()
	fmt.Printf("\nafter replacing the bad node: %.3f ms (%.0f%% improvement; paper observed 21%%)\n",
		good.TotalSeconds()*1e3, improvement*100)
}
