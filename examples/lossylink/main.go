// Command lossylink demonstrates the fault-tolerant record transport: the
// same bad-node workload is run twice, once with the direct in-process
// record path and once with the monitoring data itself crossing a lossy
// link — 20% frame drops, duplicates, reordering, bit corruption, an
// injected delivery delay, and one analysis-server crash-restart mid-run.
// Sequence-numbered, checksummed frames with bounded retry on the client
// and dedup on the server deliver every record exactly once; retry stalls
// are charged to the ranks' virtual clocks, so they show up as scattered
// single-slice outliers — but the bad node's sustained signal still
// dominates, and the server's coverage accounting proves nothing was
// silently lost.
package main

import (
	"fmt"
	"log"
	"sort"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/obs"
	"vsensor/internal/transport"
)

func main() {
	const (
		ranks        = 64
		ranksPerNode = 8
		badNode      = 3
	)
	app := apps.MustGet("CG", apps.Scale{Iters: 60, Work: 80})

	run := func(faults *transport.FaultPlan, lineage *obs.LineageConfig) *vsensor.Report {
		cl := cluster.New(cluster.Config{Nodes: ranks / ranksPerNode, RanksPerNode: ranksPerNode})
		cl.SetNodeMemSpeed(badNode, 0.55)
		// Batch of 8 so ranks flush mid-run: retry and backoff delays on the
		// lossy link are charged to the ranks' virtual clocks while the job
		// is still executing, not just at the final drain.
		rep, err := vsensor.Run(app.Source, vsensor.Options{
			Ranks: ranks, Cluster: cl, Faults: faults, BatchSize: 8,
			Lineage: lineage,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	// outliersByNode counts inter-process outlier flags per node; the node
	// with a sustained lag collects flags in slice after slice, while a
	// transient retry stall flags a rank for one slice only.
	outliersByNode := func(rep *vsensor.Report) map[int]int {
		nodes := map[int]int{}
		for _, o := range rep.Server.InterProcessOutliers(0.85) {
			nodes[o.Rank/ranksPerNode]++
		}
		return nodes
	}
	dominant := func(nodes map[int]int) (node, count int) {
		node = -1
		for n, c := range nodes {
			if c > count {
				node, count = n, c
			}
		}
		return node, count
	}

	clean := run(nil, nil)
	cleanNodes := outliersByNode(clean)
	cn, cc := dominant(cleanNodes)
	fmt.Printf("direct record path:   %.3f ms, %d records, top outlier node %d (%d flags)\n",
		clean.TotalSeconds()*1e3, len(clean.Server.Records()), cn, cc)

	plan := &transport.FaultPlan{
		Seed: 7, Drop: 0.2, Dup: 0.08, Reorder: 0.1, Corrupt: 0.03,
		DelayNs: 5_000, CrashAfterFrames: 40, CrashDownFrames: 15,
	}
	lossy := run(plan, nil)
	lossyNodes := outliersByNode(lossy)
	ln, lc := dominant(lossyNodes)
	cov := lossy.Coverage()
	fmt.Printf("lossy record path:    %.3f ms, %d records, top outlier node %d (%d flags)\n",
		lossy.TotalSeconds()*1e3, len(lossy.Server.Records()), ln, lc)
	fmt.Printf("  fault plan: %s\n", plan)
	fmt.Printf("  coverage: %.1f%% (%d/%d records), %d dup frames absorbed, %d checksum rejects\n",
		cov.Fraction()*100, cov.IngestedRecords, cov.ExpectedRecords, cov.DupFrames, cov.ChecksumErrors)

	report := lossy.Server.InterProcessReport(0.85)
	fmt.Printf("  analysis confidence: %.3f over %d outlier flags\n",
		report.Confidence, len(report.Outliers))
	fmt.Printf("  flags per node: %v (retry stalls scatter noise; the bad node sustains)\n",
		sortedCounts(lossyNodes))
	if ln == badNode {
		fmt.Printf("\nbad node %d still localized through the lossy link\n", badNode)
	} else {
		fmt.Printf("\nWARNING: bad node %d not dominant under the lossy link\n", badNode)
	}

	// Third leg: the same lossy run with record-lineage tracing sampling
	// 1 in 64 frames. Sampled frames carry their trace ID in the wire
	// format, so every hop — emit, enqueue, each delivery attempt and
	// retry, server ingest, dedup, WAL, epoch close, verdict — lands in
	// the flight recorder and can be replayed as a journey.
	traced := run(plan, &obs.LineageConfig{SampleEvery: 64, Seed: 7})
	traced.Server.InterProcessOutliers(0.85) // close epochs so journeys end in verdicts
	lin := traced.Lineage()
	st := lin.Stats()
	fmt.Printf("\nlineage leg: sampled %d frames (1 in %d), %d spans in flight recorder\n",
		st.SampledFrames, st.SampleEvery, st.Spans)

	spans, _ := lin.Snapshot(nil, 0)
	journeys := map[uint64]map[obs.Stage]bool{}
	for _, sp := range spans {
		m := journeys[sp.Trace]
		if m == nil {
			m = map[obs.Stage]bool{}
			journeys[sp.Trace] = m
		}
		m[sp.Stage] = true
	}
	deepTrace, deep := uint64(0), 0
	for tr, m := range journeys {
		if len(m) > deep {
			deepTrace, deep = tr, len(m)
		}
	}
	fmt.Printf("  %d sampled journeys; deepest (trace %016x) crossed %d distinct stages\n",
		len(journeys), deepTrace, deep)
	if top, ok := lin.StageHistogram(obs.StageIngest).TopExemplar(); ok {
		fmt.Printf("  slowest sampled ingest: trace %016x at %.0f ns — resolvable in /debug/flight\n",
			top.Trace, top.Value)
	}
}

func sortedCounts(m map[int]int) []string {
	nodes := make([]int, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = fmt.Sprintf("node%d:%d", n, m[n])
	}
	return out
}
