// Command netcongestion reproduces the paper's Fig. 22 case study: mini-FT
// (whose all-to-all transpose is highly network-bound) runs on 1024 ranks
// while the interconnect degrades in the middle of the run. The network
// performance matrix shows a time-bounded low window across all ranks, and
// the slowdown factor is in the neighbourhood of the paper's 3.37x.
package main

import (
	"fmt"
	"log"
	"time"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/ir"
)

func main() {
	const ranks = 1024
	app := apps.MustGet("FT", apps.Scale{Iters: 50, Work: 40})

	mkCluster := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: ranks / 16, RanksPerNode: 16})
	}

	clean, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: mkCluster()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal FT run on %d ranks: %.3f ms\n", ranks, clean.TotalSeconds()*1e3)

	// Degrade the network over the middle ~60% of the expected run. The
	// program slows down, stretching the run beyond the window's end.
	total := clean.Result.TotalNs
	cl := mkCluster()
	cl.AddNetWindow(total/5, int64(1)<<62, 0.25)

	congested, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: cl})
	if err != nil {
		log.Fatal(err)
	}
	slowdown := congested.TotalSeconds() / clean.TotalSeconds()
	fmt.Printf("congested run:            %.3f ms (%.2fx slower; paper observed 3.37x)\n",
		congested.TotalSeconds()*1e3, slowdown)

	m := congested.Matrices(2 * time.Millisecond)[ir.Network]
	fmt.Println("\nnetwork performance matrix (low column block = congestion):")
	fmt.Print(m.ASCII(32, 72))

	for _, w := range m.LowTimeWindows(0.7, 0.8) {
		fmt.Printf("\nnetwork degradation window: %.1f ms .. %.1f ms (mean perf %.2f)\n",
			float64(w.StartNs)/1e6, float64(w.EndNs)/1e6, w.MeanPerf)
	}
	if mc := congested.Matrices(2 * time.Millisecond)[ir.Computation]; mc != nil {
		fmt.Printf("computation matrix windows in the same period: %d (root cause is the network)\n",
			len(mc.LowTimeWindows(0.7, 0.8)))
	}
}
