// Command noiseinject reproduces the paper's §6.4 noise-injection study
// (Figs. 18-20): mini-CG on 128 ranks runs twice, once clean and once with
// a competing "noiser" process injected on two rank blocks for part of the
// run. The mpiP-style profiler shows MPI time growing — misleading, since
// the injected noise is CPU contention — while vSensor's computation
// matrix localizes exactly which ranks were hit and when. The ITAC-style
// tracer is attached too, for the data-volume comparison.
package main

import (
	"fmt"
	"log"
	"time"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/ir"
)

func main() {
	const (
		ranks        = 128
		ranksPerNode = 8
	)
	app := apps.MustGet("CG", apps.Scale{Iters: 250, Work: 200})
	mk := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: ranks / ranksPerNode, RanksPerNode: ranksPerNode})
	}

	clean, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: mk(), Profile: true, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	total := clean.Result.TotalNs
	fmt.Printf("clean run: %.3f ms  (profiler: comp %.3fs, mpi %.3fs)\n",
		clean.TotalSeconds()*1e3, clean.Profiler.MeanCompSeconds(), clean.Profiler.MeanMPISeconds())

	// Inject noise twice, like the paper: ranks 24-47 in the first window,
	// ranks 72-95 in the second.
	noisy := mk()
	for node := 3; node <= 5; node++ { // ranks 24..47
		noisy.AddCPUNoise(node, total/4, total/4+total/6, 0.3)
	}
	for node := 9; node <= 11; node++ { // ranks 72..95
		noisy.AddCPUNoise(node, total*2/3, total*2/3+total/6, 0.3)
	}

	rep, err := vsensor.Run(app.Source, vsensor.Options{Ranks: ranks, Cluster: noisy, Profile: true, Trace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noisy run: %.3f ms  (profiler: comp %.3fs, mpi %.3fs)\n",
		rep.TotalSeconds()*1e3, rep.Profiler.MeanCompSeconds(), rep.Profiler.MeanMPISeconds())
	fmt.Println("\nthe profiler sees times grow but cannot say WHERE or WHEN the noise was.")

	m := rep.Matrices(2 * time.Millisecond)[ir.Computation]
	fmt.Println("\nvSensor computation matrix (the two blocks are the injections):")
	fmt.Print(m.ASCII(32, 72))
	for _, b := range m.LowBlocks(0.8, 0.02) {
		fmt.Printf("variance block: ranks %d-%d during %.1f..%.1f ms (mean perf %.2f)\n",
			b.FirstRank, b.LastRank, float64(b.StartNs)/1e6, float64(b.EndNs)/1e6, b.MeanPerf)
	}

	fmt.Printf("\ndata volume: tracer %.2f MB vs vSensor %.3f MB (paper: 501.5 MB vs 8.8 MB)\n",
		float64(rep.Tracer.Bytes())/1e6, float64(rep.DataVolume())/1e6)
}
