// Command recovery demonstrates the durable analysis server and rank
// liveness leases. A bad-node workload streams monitoring data over a
// faulty link while:
//
//   - the analysis server runs with a write-ahead log and snapshots, and
//     the fault plan's crash window REALLY crashes it mid-run — memory
//     wiped, disk crashed — so the verdict below was computed by a server
//     that rebuilt itself from snapshot + WAL replay;
//   - one rank dies permanently partway through (deadrank fault). Liveness
//     leases notice the silence: the dead rank is excluded from the
//     analysis watermark, so the run terminates with a degraded verdict
//     naming the rank instead of stalling forever waiting for it.
package main

import (
	"fmt"
	"log"

	vsensor "vsensor"
	"vsensor/internal/apps"
	"vsensor/internal/cluster"
	"vsensor/internal/server"
	"vsensor/internal/transport"
)

func main() {
	const (
		ranks        = 32
		ranksPerNode = 8
		badNode      = 2
		deadRank     = 13
	)
	app := apps.MustGet("CG", apps.Scale{Iters: 60, Work: 80})
	cl := cluster.New(cluster.Config{Nodes: ranks / ranksPerNode, RanksPerNode: ranksPerNode})
	cl.SetNodeMemSpeed(badNode, 0.55)

	plan := &transport.FaultPlan{
		Seed: 11, Drop: 0.1, Dup: 0.05,
		CrashAfterFrames: 60, CrashDownFrames: 20,
		DeadRank: deadRank, DeadAfterFrames: 2,
	}
	rep, err := vsensor.Run(app.Source, vsensor.Options{
		Ranks:      ranks,
		Cluster:    cl,
		Faults:     plan,
		BatchSize:  8,
		Durability: &server.DurabilityConfig{SnapshotEvery: 64},
		Transport:  &transport.Config{LeaseNs: 1_000_000}, // 1ms lease, heartbeat every 0.5ms
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %.3f ms over %d ranks, fault plan [%s]\n",
		rep.TotalSeconds()*1e3, ranks, plan)

	ds := rep.Durability()
	fmt.Printf("\ndurability: %d WAL entries (%d bytes, %d syncs), %d snapshots, %d crash recoveries\n",
		ds.WALEntries, ds.WALBytes, ds.Syncs, ds.Snapshots, ds.Recoveries)
	if ds.Recoveries > 0 {
		lr := ds.LastRecovery
		fmt.Printf("last recovery: snapshot gen %d (lsn %d) + %d WAL entries replayed "+
			"(%d frames, %d records rebuilt, %d torn bytes discarded)\n",
			lr.SnapshotGen, lr.SnapshotLSN, lr.WALEntriesReplayed,
			lr.FramesReplayed, lr.RecordsRecovered, lr.TruncatedBytes)
	}

	fmt.Println("\nrank liveness:")
	for _, rl := range rep.Liveness() {
		if rl.State != server.Alive {
			fmt.Printf("  rank %-3d %-8s last seen %.3f ms, lag %.3f ms (lease %.3f ms)\n",
				rl.Rank, rl.State, float64(rl.LastSeenNs)/1e6, float64(rl.LagNs)/1e6, float64(rl.LeaseNs)/1e6)
		}
	}
	sum := rep.Server.LivenessSummary()
	fmt.Printf("  %d alive, %d suspect, %d dead\n", sum.Alive, sum.Suspect, sum.Dead)

	verdict := rep.Server.InterProcessReport(0.85)
	fmt.Printf("\nverdict: %d outlier flags", len(verdict.Outliers))
	if verdict.Degraded {
		fmt.Printf(" — DEGRADED: dead ranks %v excluded from the watermark\n", verdict.DeadRanks)
	} else {
		fmt.Println(" (fully live fleet)")
	}
	fmt.Printf("confidence: %.3f = coverage %.3f x liveness %.3f\n",
		verdict.Confidence, verdict.Coverage.Fraction(), verdict.LivenessConfidence)

	byNode := map[int]int{}
	for _, o := range verdict.Outliers {
		byNode[o.Rank/ranksPerNode]++
	}
	top, cnt := -1, 0
	for n, c := range byNode {
		if c > cnt {
			top, cnt = n, c
		}
	}
	if top == badNode {
		fmt.Printf("\nbad node %d still localized (%d flags) through crash, recovery, and a dead rank\n", badNode, cnt)
	} else {
		fmt.Printf("\nWARNING: bad node %d not dominant (top node %d with %d flags)\n", badNode, top, cnt)
	}
}
