// Command iostorm demonstrates the third sensor component: IO. A
// checkpointing stencil code writes fixed-size snapshots every iteration;
// midway through the run the shared filesystem degrades (another job's IO
// storm). The IO performance matrix shows the window while computation and
// network stay clean, attributing the variance to the right component.
package main

import (
	"fmt"
	"log"
	"time"

	vsensor "vsensor"
	"vsensor/internal/cluster"
	"vsensor/internal/ir"
)

const src = `
global int STEPS = 150;
global int CELLS = 120;

func stencil(int cells) {
    for (int c = 0; c < cells; c++) {
        flops(220);
        mem(90);
    }
}

func checkpoint(int bytes) {
    io_write(bytes);
}

func halo(int rank, int size) {
    int peer = rank + 1;
    if (rank % 2 == 1) {
        peer = rank - 1;
    }
    if (peer >= size) {
        peer = rank;
    }
    mpi_sendrecv(peer, 8192, 1.0);
}

func main() {
    int rank = mpi_comm_rank();
    int size = mpi_comm_size();
    for (int step = 0; step < STEPS; step++) {
        stencil(CELLS);
        halo(rank, size);
        checkpoint(262144);
    }
}
`

func main() {
	const ranks = 32
	mk := func() *cluster.Cluster {
		return cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 8})
	}
	clean, err := vsensor.Run(src, vsensor.Options{Ranks: ranks, Cluster: mk()})
	if err != nil {
		log.Fatal(err)
	}
	total := clean.Result.TotalNs
	fmt.Printf("clean run: %.3f ms\n", clean.TotalSeconds()*1e3)

	cl := mk()
	cl.AddIOWindow(total/3, 2*total/3, 0.15)
	rep, err := vsensor.Run(src, vsensor.Options{Ranks: ranks, Cluster: cl})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with IO storm: %.3f ms\n\n", rep.TotalSeconds()*1e3)

	mats := rep.Matrices(2 * time.Millisecond)
	if m := mats[ir.IO]; m != nil {
		fmt.Println("IO performance matrix:")
		fmt.Print(m.ASCII(16, 72))
	}
	fmt.Println()
	fmt.Print(rep.ReportText(2*time.Millisecond, 8))
}
