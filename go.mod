module vsensor

go 1.22
