package vsensor_test

// End-to-end tests of the versioned-snapshot read path through the
// facade: Report.Snapshot must hand back the same immutable render the
// HTTP endpoints serve, stamped with the generation that /status and
// /outliers expose as their ETag, and the conditional-request protocol
// must hold over a real pipeline run.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	vsensor "vsensor"
	"vsensor/internal/obs"
)

func TestReportSnapshotFacade(t *testing.T) {
	rep, o := runWithObs(t)

	sn := rep.Snapshot()
	if sn == nil {
		t.Fatal("Snapshot() = nil on an instrumented run")
	}
	if sn.Gen == 0 {
		t.Error("snapshot generation not stamped")
	}
	if sn.Progress.Records != len(rep.Server.Records()) {
		t.Errorf("snapshot records = %d, want %d",
			sn.Progress.Records, len(rep.Server.Records()))
	}
	// The run is quiescent, so a second read must serve the same render.
	if again := rep.Snapshot(); again.Gen != sn.Gen {
		t.Errorf("quiescent generations differ: %d then %d", sn.Gen, again.Gen)
	}

	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path, inm string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// /status serves the facade snapshot's generation as its ETag.
	wantTag := `"` + strconv.FormatUint(sn.Gen, 10) + `"`
	resp := get("/status", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status -> %d", resp.StatusCode)
	}
	if tag := resp.Header.Get("ETag"); tag != wantTag {
		t.Errorf("/status ETag = %s, want %s (Report.Snapshot gen)", tag, wantTag)
	}

	// Revalidation with the current tag — strong, weak, and list forms —
	// must all answer 304 with no body.
	for _, inm := range []string{wantTag, "W/" + wantTag, `"stale", ` + wantTag, "*"} {
		resp := get("/outliers", inm)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %s -> %d, want 304", inm, resp.StatusCode)
		}
		if len(b) != 0 {
			t.Errorf("304 carried a %d-byte body", len(b))
		}
	}

	// A long-poll at the current generation on a quiescent server must
	// time out back to 304 rather than hanging or re-serving.
	resp = get("/status?wait=1&timeout_ms=40", wantTag)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("timed-out long-poll -> %d, want 304", resp.StatusCode)
	}

	// Hostile cursors: negative is a client error, past-the-end is an
	// explicit truncation, never silently clamped data.
	resp = get("/records?cursor=-1", "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative cursor -> %d, want 400", resp.StatusCode)
	}
	total := len(rep.Server.Records())
	resp = get("/records?cursor="+strconv.Itoa(total+100), "")
	var rr struct {
		Cursor    int  `json:"cursor"`
		Base      int  `json:"base"`
		Truncated bool `json:"truncated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rr.Truncated || rr.Cursor != rr.Base {
		t.Errorf("past-the-end cursor: %+v, want truncated back to base", rr)
	}
}

func TestReportSnapshotUninstrumented(t *testing.T) {
	rep, err := vsensor.Run(obsTestSrc, vsensor.Options{Ranks: 2, Uninstrumented: true, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot() != nil {
		t.Error("Snapshot() must be nil when the run had no analysis server")
	}
}
