package vsensor_test

import (
	"sort"
	"testing"

	vsensor "vsensor"
	"vsensor/internal/detect"
	"vsensor/internal/obs"
	"vsensor/internal/server"
	"vsensor/internal/transport"
)

// lineageRun executes the full pipeline over the faulty transport with the
// durable server and lineage sampling enabled, then closes all reachable
// epochs with one final query (epochs close only when an analysis query
// passes the watermark over them, so close/verdict spans need it).
func lineageRun(t *testing.T, cfg obs.LineageConfig) *vsensor.Report {
	t.Helper()
	rep, err := vsensor.Run(lossySrc, vsensor.Options{
		Ranks:   8,
		Cluster: lossyCluster(),
		Faults:  &transport.FaultPlan{Seed: 5, Drop: 0.2, Dup: 0.05, Reorder: 0.1},
		// Fine slices so the run spans many epochs and the watermark can
		// pass over early ones.
		Detect:     detect.Config{SliceNs: 50_000},
		BatchSize:  4,
		Durability: &server.DurabilityConfig{},
		Lineage:    &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Server.InterProcessOutliers(0.8)
	return rep
}

// TestLineageEndToEnd is the acceptance path: a seeded faulty run with
// lineage on yields at least one sampled record whose journey crosses six
// or more distinct pipeline stages, and the ingest histogram's exemplar
// resolves back to a journey in the flight recorder.
func TestLineageEndToEnd(t *testing.T) {
	rep := lineageRun(t, obs.LineageConfig{SampleEvery: 4, Seed: 21})
	lin := rep.Lineage()
	if lin == nil {
		t.Fatal("Options.Lineage set but Report.Lineage() is nil")
	}
	if lin.SampledFrames() == 0 {
		t.Fatal("no frames sampled at SampleEvery=4")
	}

	spans, _ := lin.Snapshot(nil, 0)
	stagesByTrace := map[uint64]map[obs.Stage]bool{}
	for _, sp := range spans {
		m := stagesByTrace[sp.Trace]
		if m == nil {
			m = map[obs.Stage]bool{}
			stagesByTrace[sp.Trace] = m
		}
		m[sp.Stage] = true
	}
	best, bestTrace := 0, uint64(0)
	for tr, m := range stagesByTrace {
		if len(m) > best {
			best, bestTrace = len(m), tr
		}
	}
	if best < 6 {
		t.Fatalf("deepest journey crosses %d stages (trace %#x), want >= 6", best, bestTrace)
	}
	for _, want := range []obs.Stage{obs.StageEmit, obs.StageEnqueue, obs.StageAttempt, obs.StageIngest} {
		found := false
		for _, m := range stagesByTrace {
			if m[want] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no journey recorded stage %v", want)
		}
	}

	// The top server_ingest exemplar must point into a recorded journey.
	top, ok := lin.StageHistogram(obs.StageIngest).TopExemplar()
	if !ok || top.Trace == 0 {
		t.Fatal("ingest histogram has no exemplar after a sampled run")
	}
	if _, resolved := stagesByTrace[top.Trace]; !resolved {
		t.Fatalf("top ingest exemplar trace %#x not in the flight recorder", top.Trace)
	}

	// Closing epochs via the final query must have produced verdict spans
	// for at least one sampled journey.
	var sawClose bool
	for _, m := range stagesByTrace {
		if m[obs.StageEpochClose] {
			sawClose = true
			break
		}
	}
	if !sawClose {
		t.Error("no epoch_close span on any journey after the closing query")
	}
}

// sampledTraces returns the sorted distinct trace IDs in the flight
// recorder.
func sampledTraces(lin *obs.Lineage) []uint64 {
	spans, _ := lin.Snapshot(nil, 0)
	seen := map[uint64]bool{}
	for _, sp := range spans {
		seen[sp.Trace] = true
	}
	out := make([]uint64, 0, len(seen))
	for tr := range seen {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestLineageDeterministicSampling pins that two identical seeded runs
// sample the identical set of journeys — the property that makes a trace ID
// from one run's report reproducible in a rerun.
func TestLineageDeterministicSampling(t *testing.T) {
	cfg := obs.LineageConfig{SampleEvery: 4, Seed: 21}
	a := sampledTraces(lineageRun(t, cfg).Lineage())
	b := sampledTraces(lineageRun(t, cfg).Lineage())
	if len(a) == 0 {
		t.Fatal("no journeys sampled")
	}
	if len(a) != len(b) {
		t.Fatalf("sampled journey counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampled set diverges at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// TestLineageAutoObs pins that Options.Lineage alone is enough — the facade
// creates the obs bundle when the caller did not attach one.
func TestLineageAutoObs(t *testing.T) {
	rep, err := vsensor.Run(lossySrc, vsensor.Options{
		Ranks:   4,
		Lineage: &obs.LineageConfig{SampleEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lin := rep.Lineage()
	if lin == nil {
		t.Fatal("lineage not enabled without an explicit Obs")
	}
	if lin.SampledFrames() == 0 {
		t.Fatal("no frames sampled at SampleEvery=1 on the direct path")
	}
	// Direct (in-process) delivery still records emit and server-side hops
	// even without the transport link.
	spans, _ := lin.Snapshot(nil, 0)
	var sawEmit, sawIngest bool
	for _, sp := range spans {
		sawEmit = sawEmit || sp.Stage == obs.StageEmit
		sawIngest = sawIngest || sp.Stage == obs.StageIngest
	}
	if !sawEmit || !sawIngest {
		t.Fatalf("direct path spans: emit=%v ingest=%v, want both", sawEmit, sawIngest)
	}
}
