// Package vsensor is a full reimplementation of the vSensor system from
// "vSensor: Leveraging Fixed-Workload Snippets of Programs for Performance
// Variance Detection" (PPoPP 2018) as a pure-Go library over a simulated
// HPC substrate.
//
// The pipeline mirrors the paper's workflow (Fig. 2):
//
//	src → Compile → Identify v-sensors → Instrument → Run → Analyze → Visualize
//
// Programs are written in mini-C (internal/minic), a small C-like language
// with MPI-style builtins, standing in for the paper's LLVM front end.
// Execution happens on a virtual cluster with injectable performance
// variance (internal/cluster + internal/mpisim), standing in for Tianhe-2.
//
// Quickstart:
//
//	report, err := vsensor.Run(src, vsensor.Options{Ranks: 64})
//	...
//	matrix := report.Matrices(200 * time.Millisecond)[ir.Computation]
//	fmt.Print(matrix.ASCII(32, 80))
package vsensor

import (
	"fmt"
	"io"
	"sync"
	"time"

	"vsensor/internal/analysis"
	"vsensor/internal/cluster"
	"vsensor/internal/detect"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
	"vsensor/internal/minic"
	"vsensor/internal/netsrv"
	"vsensor/internal/obs"
	"vsensor/internal/profiler"
	"vsensor/internal/rundata"
	"vsensor/internal/server"
	"vsensor/internal/stats"
	"vsensor/internal/tracer"
	"vsensor/internal/transport"
	"vsensor/internal/vis"
	"vsensor/internal/vm"
)

// Options configures the full pipeline.
type Options struct {
	// Ranks is the number of simulated MPI processes (default 1).
	Ranks int

	// Cluster is the machine model; nil creates a uniform single-node
	// cluster wide enough for Ranks.
	Cluster *cluster.Cluster

	// Analysis configures v-sensor identification (paper §3).
	Analysis analysis.Config

	// Instrument configures sensor selection (paper §4).
	Instrument instrument.Config

	// Detect configures the on-line runtime analysis (paper §5).
	Detect detect.Config

	// Uninstrumented skips instrumentation and detection entirely
	// (baseline runs for overhead measurements).
	Uninstrumented bool

	// BatchSize is the analysis-server client batch (default 64; 1
	// disables batching).
	BatchSize int

	// ServerShards is the analysis server's ingest shard count (rounded up
	// to a power of two; default server.DefaultShards). Each sender rank's
	// flow state and record sub-log live on one shard, so more shards admit
	// more concurrently ingesting ranks.
	ServerShards int

	// Transport tunes the reliable record link to the analysis server
	// (retry, backoff, retransmit buffer). Nil with Faults nil keeps the
	// direct in-process delivery path.
	Transport *transport.Config

	// Faults injects transport faults (drop/dup/reorder/delay/corrupt and
	// server crash-restart) on the record link. Setting it routes every
	// rank's records through internal/transport; retry and backoff delays
	// are charged to the ranks' virtual clocks.
	Faults *transport.FaultPlan

	// RunID names this run on a networked session (Listen or Connect
	// mode). Default "local". 1..128 printable ASCII bytes — it travels in
	// the vSS1 hello and keys the run's tenant on the service.
	RunID string

	// Listen starts an in-process multi-tenant analysis service
	// (internal/netsrv) on this TCP address and routes the record path
	// over a real loopback session to it: the run's own server becomes the
	// service's tenant, so every frame crosses the wire protocol — length
	// envelopes, vSS1 handshake, frame acks — instead of a function call.
	// Report.Service exposes the listener (bound address, shed/pool
	// stats); it is closed when the run finishes.
	Listen string

	// Connect dials an external analysis service (started with `vsensor
	// serve`) at this address instead of creating a local server.
	// Report.Server is nil — the records, coverage, and outlier verdicts
	// live on the remote service under RunID — and Durability must be nil
	// (the journal belongs to the service's side of the socket).
	// Mutually exclusive with Listen.
	Connect string

	// Reconnect enables the self-healing network session (requires Listen
	// or Connect): the record path runs over a netsrv.ResilientSession
	// that auto-redials on connection loss with jittered exponential
	// backoff, honors vSE1 retry-after hints, and resumes delivery at the
	// durable LSN from the session ack. Only the Dial and Retry fields are
	// consulted — Addr and Hello are filled from Listen/Connect and RunID.
	// Report.Resilient exposes the session and its reconnect ledger.
	Reconnect *netsrv.ReconnectConfig

	// DialRetry shapes the initial Connect-mode dial when Reconnect is
	// nil: transient vSE1 refusals (busy, session cap, shutdown) sleep the
	// server's retry-after hint and try again within the policy budget
	// instead of failing the run on the first refusal. Nil uses the
	// default policy (10s budget, fail-fast on network errors). Requires
	// Connect.
	DialRetry *netsrv.RetryPolicy

	// Durability attaches the analysis server's WAL + snapshot layer
	// (internal/storage-backed). With it, the Faults crash window becomes a
	// real crash: the server's memory is wiped, its disk crashes (losing
	// unsynced tails), and recovery rebuilds state from snapshot + WAL
	// replay before ingest resumes. Nil keeps the purely in-memory server.
	Durability *server.DurabilityConfig

	// ProbeCostNs is the virtual cost of each Tick/Tock probe (what makes
	// overhead non-zero). Default 25ns.
	ProbeCostNs float64

	// PMUJitterPct bounds simulated PMU read error (paper §6.2).
	PMUJitterPct float64

	// MissRate supplies the synthetic cache-miss-rate signal (paper §5.3).
	MissRate func(rank, sensor int, execIdx int64) float64

	// CollectRecords retains every raw sensor record for distribution
	// statistics (Figs. 16-17). Costs memory on large runs.
	CollectRecords bool

	// Profile attaches the mpiP-style baseline profiler.
	Profile bool

	// Trace attaches the ITAC-style baseline tracer.
	Trace bool

	// Lineage enables end-to-end record-lineage tracing: a seeded
	// deterministic sampler stamps ~1/SampleEvery frames with a trace ID
	// that travels in the wire format (the vSF2 extension), and every hop
	// of a sampled record's journey — emit, enqueue, delivery attempts and
	// retries, server ingest, dedup, WAL append/sync, snapshot, epoch
	// close, verdict — lands in a bounded in-memory flight recorder
	// (obs.FlightRecorder) with per-stage latency histograms + exemplars.
	// Requires Obs; one is created automatically when nil. Nil disables
	// lineage entirely — the wire bytes are then exactly the lineage-off
	// encoding and no hop ever reads the clock.
	Lineage *obs.LineageConfig

	// Obs attaches the self-observability layer (internal/obs): pipeline
	// stage spans, per-rank execution spans, metric families across the
	// vm/detect/server/mpisim/cluster packages, and — via obs.Serve — a
	// live HTTP introspection endpoint whose /status and /records are
	// wired to this run while it executes. Nil disables all of it; the
	// simulated virtual time is identical either way.
	Obs *obs.Obs

	// Stdout receives program print() output.
	Stdout io.Writer

	// MaxSteps bounds interpreted statements per rank.
	MaxSteps int64

	Seed int64
}

// DefaultProbeCostNs is the Tick/Tock virtual cost when unset.
const DefaultProbeCostNs = 25

// Report is the outcome of a pipeline run.
type Report struct {
	Program      *ir.Program
	Analysis     *analysis.Result
	Instrumented *instrument.Instrumented // nil for uninstrumented runs
	Result       *vm.Result
	Server       *server.Server   // nil in Connect mode: the run's server lives on the remote service
	Link         *transport.Link  // non-nil when the run used the fault-injectable transport
	Session      *netsrv.Session          // non-nil in Listen/Connect mode without Reconnect: the run's TCP session
	Resilient    *netsrv.ResilientSession // non-nil when Options.Reconnect routed the run through the self-healing session
	Service      *netsrv.Service          // non-nil in Listen mode: the in-process listener the run fed
	Detectors    []*detect.Detector
	Records      []vm.Record // raw sensor records if collected
	Profiler     *profiler.Profile
	Tracer       *tracer.Trace

	lin *obs.Lineage // record-lineage tracer, nil unless Options.Lineage
}

// Compile parses, resolves, and semantically checks a mini-C program.
// Building the IR also runs the slot-resolution pass (internal/resolve),
// so the returned program's AST carries the frame/global addressing the
// VM's flat-frame interpreter executes over.
func Compile(src string) (*ir.Program, error) {
	ast, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	prog, err := ir.Build(ast)
	if err != nil {
		return nil, err
	}
	if err := ir.CheckStrict(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// Analyze runs v-sensor identification on source text.
func Analyze(src string, cfg analysis.Config) (*analysis.Result, error) {
	prog, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return analysis.AnalyzeWith(prog, cfg), nil
}

// InstrumentSource returns the instrumented mini-C source with vs_tick /
// vs_tock probes — the paper's "map to source" output.
func InstrumentSource(src string, acfg analysis.Config, icfg instrument.Config) (string, error) {
	res, err := Analyze(src, acfg)
	if err != nil {
		return "", err
	}
	return instrument.Apply(res, icfg).EmitSource(), nil
}

// Run executes the full pipeline on source text.
func Run(src string, opt Options) (*Report, error) {
	sp := opt.Obs.Span(0, "compile")
	prog, err := Compile(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	return RunProgram(prog, opt)
}

// RunProgram executes the full pipeline on a compiled program.
func RunProgram(prog *ir.Program, opt Options) (*Report, error) {
	if opt.Ranks <= 0 {
		opt.Ranks = 1
	}
	if opt.ProbeCostNs == 0 {
		opt.ProbeCostNs = DefaultProbeCostNs
	}
	o := opt.Obs
	if opt.Lineage != nil {
		if o == nil {
			o = obs.New()
			opt.Obs = o
		}
		o.EnableLineage(*opt.Lineage)
	}
	o.NameThread(0, "pipeline")
	o.Gauge("run_ranks").Set(float64(opt.Ranks))
	rep := &Report{Program: prog, lin: o.Lineage()}

	sp := o.Span(0, "identify")
	rep.Analysis = analysis.AnalyzeWith(prog, opt.Analysis)
	sp.End()

	var mach *vm.Machine
	vcfg := vm.Config{
		Ranks:        opt.Ranks,
		Cluster:      opt.Cluster,
		PMUJitterPct: opt.PMUJitterPct,
		MissRate:     opt.MissRate,
		Stdout:       opt.Stdout,
		Seed:         opt.Seed,
		MaxSteps:     opt.MaxSteps,
	}

	vcfg.Obs = o

	var collectors []*recordCollector
	var mu sync.Mutex
	if !opt.Uninstrumented {
		isp := o.Span(0, "instrument")
		rep.Instrumented = instrument.Apply(rep.Analysis, opt.Instrument)
		isp.End()
		if opt.Listen != "" && opt.Connect != "" {
			return nil, fmt.Errorf("vsensor: Options.Listen and Options.Connect are mutually exclusive")
		}
		if opt.Connect != "" && opt.Durability != nil {
			return nil, fmt.Errorf("vsensor: Options.Durability tunes the local analysis server; a Connect run has none (configure the remote service instead)")
		}
		if opt.Reconnect != nil && opt.Listen == "" && opt.Connect == "" {
			return nil, fmt.Errorf("vsensor: Options.Reconnect needs a networked session (set Listen or Connect)")
		}
		if opt.DialRetry != nil && opt.Connect == "" {
			return nil, fmt.Errorf("vsensor: Options.DialRetry shapes the Connect-mode dial (set Connect, or use Reconnect)")
		}
		runID := opt.RunID
		if runID == "" {
			runID = "local"
		}
		if opt.Connect == "" {
			rep.Server = server.NewSharded(opt.ServerShards)
			if opt.Durability != nil {
				rep.Server.AttachDurability(*opt.Durability)
			}
			rep.Server.SetObs(o)
		}
		opt.Detect.Obs = o
		vcfg.ProbeCostNs = opt.ProbeCostNs

		// The networked record path: in Listen mode the run hosts its own
		// netsrv service and its server becomes the tenant; in Connect mode
		// the tenant lives on an external `vsensor serve`. Either way the
		// session is the delivery Medium, so every frame crosses the real
		// wire protocol.
		switch {
		case opt.Listen != "":
			svc, err := netsrv.Listen(opt.Listen, netsrv.Config{
				Shards:    opt.ServerShards,
				NewServer: func(string) *server.Server { return rep.Server },
			})
			if err != nil {
				return nil, err
			}
			if o != nil {
				svc.SetObs(o)
			}
			if opt.Reconnect != nil {
				rs, err := dialResilient(opt, svc.Addr().String(), runID, o)
				if err != nil {
					svc.Close()
					return nil, err
				}
				rep.Service, rep.Resilient = svc, rs
				break
			}
			sess, err := netsrv.Dial(svc.Addr().String(), netsrv.Hello{RunID: runID}, netsrv.DialConfig{})
			if err != nil {
				svc.Close()
				return nil, err
			}
			rep.Service, rep.Session = svc, sess
		case opt.Connect != "":
			if opt.Reconnect != nil {
				rs, err := dialResilient(opt, opt.Connect, runID, o)
				if err != nil {
					return nil, err
				}
				rep.Resilient = rs
				break
			}
			// Without the full self-healing wrapper, the initial dial still
			// honors vSE1 retry-after hints on transient refusals (busy,
			// session cap, shutdown) within a bounded budget, instead of
			// exiting on the first refusal from a momentarily full service.
			policy := netsrv.RetryPolicy{Seed: opt.Seed}
			if opt.DialRetry != nil {
				policy = *opt.DialRetry
			}
			sess, _, err := netsrv.DialRetry(opt.Connect, netsrv.Hello{RunID: runID}, netsrv.DialConfig{}, policy)
			if err != nil {
				return nil, err
			}
			rep.Session = sess
		}
		defer func() {
			if rep.Session != nil {
				_ = rep.Session.Close()
			}
			if rep.Resilient != nil {
				_ = rep.Resilient.Close()
			}
			if rep.Service != nil {
				_ = rep.Service.Close()
			}
		}()

		// The record path: direct in-process delivery by default, or the
		// fault-injectable transport link when Options.Faults/Transport
		// ask for the production-shaped path. A networked session always
		// routes through the link — it is the Medium the link delivers on.
		if opt.Faults != nil || opt.Transport != nil || rep.Session != nil || rep.Resilient != nil {
			plan := transport.FaultPlan{}
			if opt.Faults != nil {
				plan = *opt.Faults
			}
			switch {
			case rep.Resilient != nil:
				rep.Link = transport.NewLinkOver(rep.Resilient, plan)
			case rep.Session != nil:
				rep.Link = transport.NewLinkOver(rep.Session, plan)
			default:
				rep.Link = transport.NewLink(rep.Server, plan)
			}
			rep.Link.SetObs(o)
			if opt.Durability != nil && rep.Server != nil {
				// A durable server makes the crash window stateful: entering
				// it wipes the server, leaving it runs WAL recovery.
				srv := rep.Server
				rep.Link.SetCrashHooks(
					func() { _ = srv.Crash() },
					func() { _, _ = srv.Recover() },
				)
			}
		}
		tcfg := transport.Config{}
		if opt.Transport != nil {
			tcfg = *opt.Transport
		}
		if tcfg.BatchSize == 0 {
			tcfg.BatchSize = opt.BatchSize
		}

		meta := make([]detect.Sensor, len(rep.Instrumented.Sensors))
		for i, s := range rep.Instrumented.Sensors {
			meta[i] = detect.Sensor{ID: s.ID, Type: s.Type, ProcessFixed: s.ProcessFixed, Name: s.Name}
		}
		rep.Detectors = make([]*detect.Detector, opt.Ranks)
		emitters := make([]detect.Emitter, opt.Ranks)
		vcfg.SinkFactory = func(rank int) vm.Sink {
			var emitter detect.Emitter
			if rep.Link != nil {
				emitter = rep.Link.NewConn(rank, tcfg)
			} else {
				emitter = rep.Server.NewClient(rank, opt.BatchSize)
			}
			d := detect.New(rank, meta, opt.Detect, emitter)
			mu.Lock()
			rep.Detectors[rank] = d
			emitters[rank] = emitter
			mu.Unlock()
			if !opt.CollectRecords {
				return d
			}
			rc := &recordCollector{next: d}
			mu.Lock()
			collectors = append(collectors, rc)
			mu.Unlock()
			return rc
		}
		defer func() {
			for _, d := range rep.Detectors {
				if d != nil {
					d.Finish()
				}
			}
			for _, e := range emitters {
				switch em := e.(type) {
				case *transport.Conn:
					_ = em.Close() // loss is visible in Server.Coverage
				case *server.Client:
					_ = em.Flush()
				}
			}
		}()
		mach = vm.NewInstrumented(rep.Instrumented, vcfg)
	} else {
		mach = vm.New(prog, vcfg)
	}

	if opt.Profile || opt.Trace {
		if opt.Profile {
			rep.Profiler = profiler.New()
		}
		if opt.Trace {
			rep.Tracer = tracer.New()
		}
		vcfg.EventFactory = func(rank int) vm.EventSink {
			var sinks []vm.EventSink
			if rep.Profiler != nil {
				sinks = append(sinks, rep.Profiler.Collector(rank))
			}
			if rep.Tracer != nil {
				sinks = append(sinks, rep.Tracer.Collector(rank))
			}
			if len(sinks) == 1 {
				return sinks[0]
			}
			return multiEventSink(sinks)
		}
		// Recreate the machine with the event factory wired in.
		if rep.Instrumented != nil {
			mach = vm.NewInstrumented(rep.Instrumented, vcfg)
		} else {
			mach = vm.New(prog, vcfg)
		}
	}

	if o != nil {
		// Wire the live introspection providers to this run so /status and
		// /records polls observe the job while it executes (paper §2:
		// on-line reporting without waiting for the program to finish).
		srv := rep.Server
		sensorCount := 0
		if rep.Instrumented != nil {
			sensorCount = len(rep.Instrumented.Sensors)
		}
		ranks := opt.Ranks
		uninstrumented := opt.Uninstrumented
		batch := opt.BatchSize
		probeCost := opt.ProbeCostNs
		if srv != nil {
			// With a server the whole read surface — /status, /records,
			// /outliers, and the CLI's Report.Snapshot — serves from the
			// server's versioned report cache: one render per state change,
			// shared by every poller, revalidated by ETag.
			netSvc := rep.Service
			netRS := rep.Resilient
			wrap := newSnapshotWrapper(srv, func(st map[string]any) {
				st["ranks"] = ranks
				st["uninstrumented"] = uninstrumented
				st["batch_size"] = batch
				st["probe_cost_ns"] = probeCost
				st["sensors"] = sensorCount
				st["server_shards"] = srv.Shards()
				if netSvc != nil {
					st["listen"] = netSvc.Addr().String()
					st["net"] = netSvc.StatusMap()
				}
				if netRS != nil {
					st["reconnect"] = netRS.Stats()
				}
				if lin := o.Lineage(); lin != nil {
					st["lineage"] = lin.Stats()
				}
			})
			o.SetReport(
				func() *obs.ReportSnapshot { return wrap(srv.Snapshot()) },
				func(afterGen uint64, timeout time.Duration) *obs.ReportSnapshot {
					return wrap(srv.WaitSnapshot(afterGen, timeout))
				},
			)
			o.SetRecords(func(cursor int) (any, int) {
				recs, next := srv.RecordsSince(cursor)
				return recs, next
			})
		} else {
			remote := opt.Connect
			netRS := rep.Resilient
			o.SetStatus(func() any {
				st := map[string]any{
					"ranks":          ranks,
					"uninstrumented": uninstrumented,
					"batch_size":     batch,
					"probe_cost_ns":  probeCost,
					"sensors":        sensorCount,
				}
				if remote != "" {
					st["remote"] = remote
				}
				if netRS != nil {
					st["reconnect"] = netRS.Stats()
				}
				if lin := o.Lineage(); lin != nil {
					st["lineage"] = lin.Stats()
				}
				return st
			})
		}
	}

	esp := o.Span(0, "execute")
	rep.Result = mach.Run()
	esp.End()
	if err := rep.Result.Err(); err != nil {
		return rep, fmt.Errorf("vsensor: run failed: %w", err)
	}
	fsp := o.Span(0, "finalize")
	if rep.Profiler != nil {
		rep.Profiler.Finalize(rep.Result)
	}
	for _, rc := range collectors {
		rep.Records = append(rep.Records, rc.recs...)
	}
	fsp.End()
	return rep, nil
}

// dialResilient builds the self-healing session from Options.Reconnect:
// the facade owns the address and run identity, so only the Dial/Retry
// knobs of the caller's config are consulted. The retry seed defaults to
// the run seed, keeping backoff jitter reproducible with everything else.
func dialResilient(opt Options, addr, runID string, o *obs.Obs) (*netsrv.ResilientSession, error) {
	rc := *opt.Reconnect
	rc.Addr = addr
	rc.Hello = netsrv.Hello{RunID: runID}
	if rc.Retry.Seed == 0 {
		rc.Retry.Seed = opt.Seed
	}
	rs, err := netsrv.DialResilient(rc)
	if err != nil {
		return nil, err
	}
	if o != nil {
		rs.SetObs(o)
	}
	return rs, nil
}

// recordCollector tees raw records into a slice before the detector.
type recordCollector struct {
	next vm.Sink
	recs []vm.Record
}

func (rc *recordCollector) OnRecord(r vm.Record) {
	rc.recs = append(rc.recs, r)
	rc.next.OnRecord(r)
}

// BindClock forwards the rank clock through the tee so a transport emitter
// behind the detector still charges virtual time.
func (rc *recordCollector) BindClock(c vm.Clock) {
	if b, ok := rc.next.(vm.ClockBinder); ok {
		b.BindClock(c)
	}
}

type multiEventSink []vm.EventSink

func (m multiEventSink) OnEvent(e vm.Event) {
	for _, s := range m {
		s.OnEvent(e)
	}
}

// ---------- report helpers ----------

// SensorTypes maps instrumented sensor IDs to component types.
func (r *Report) SensorTypes() map[int]ir.SnippetType {
	out := make(map[int]ir.SnippetType)
	if r.Instrumented == nil {
		return out
	}
	for _, s := range r.Instrumented.Sensors {
		out[s.ID] = s.Type
	}
	return out
}

// Matrices builds the per-type performance matrices (paper §5.5) at the
// given column resolution.
func (r *Report) Matrices(col time.Duration) map[ir.SnippetType]*vis.Matrix {
	if r.Server == nil {
		return nil
	}
	ranks := len(r.Result.Ranks)
	return vis.Build(r.Server.Records(), r.SensorTypes(), ranks, col.Nanoseconds())
}

// Distribution computes coverage / frequency / histograms (paper §6.3).
// Requires Options.CollectRecords.
func (r *Report) Distribution() *stats.Distribution {
	return stats.Analyze(r.Records, r.Result.TotalNs)
}

// Events returns all per-process variance events across ranks.
func (r *Report) Events() []detect.VarianceEvent {
	var out []detect.VarianceEvent
	for _, d := range r.Detectors {
		if d != nil {
			out = append(out, d.Events()...)
		}
	}
	return out
}

// DataVolume returns the bytes shipped to the analysis server.
func (r *Report) DataVolume() int64 {
	if r.Server == nil {
		return 0
	}
	return r.Server.BytesReceived()
}

// Coverage returns the analysis server's delivery coverage: how completely
// its record log reflects what the ranks sent. On the direct in-process
// path it is always complete; under a faulty transport it quantifies what
// was lost to backpressure.
func (r *Report) Coverage() server.Coverage {
	if r.Server == nil {
		return server.Coverage{}
	}
	return r.Server.Coverage()
}

// Snapshot returns the server's current versioned report snapshot — the
// same immutable render /status, /records, and /outliers serve, stamped
// with its generation, watermark, and arrival ticket. Nil when the run had
// no server (uninstrumented).
func (r *Report) Snapshot() *server.ReportSnapshot {
	if r.Server == nil {
		return nil
	}
	return r.Server.Snapshot()
}

// newSnapshotWrapper adapts the server's versioned snapshot to the obs
// HTTP layer's shape, memoizing one wrapper per generation so the JSON
// renders (memoized inside obs.ReportSnapshot) are shared by every poller
// at that generation. extra adds the facade's static status fields.
func newSnapshotWrapper(srv *server.Server, extra func(map[string]any)) func(*server.ReportSnapshot) *obs.ReportSnapshot {
	var mu sync.Mutex
	var last *obs.ReportSnapshot
	return func(sn *server.ReportSnapshot) *obs.ReportSnapshot {
		if sn == nil {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if last != nil && last.Gen == sn.Gen {
			return last
		}
		st := map[string]any{
			"gen":          sn.Gen,
			"ticket":       sn.Ticket,
			"watermark_ns": sn.WatermarkNs,
			"progress":     sn.Progress,
			"per_rank":     sn.PerRank,
			"coverage":     sn.Coverage,
			"per_shard":    sn.PerShard,
			"epochs":       sn.Epochs,
			"liveness":     sn.Liveness,
		}
		if sn.Durability.Enabled {
			st["durability"] = sn.Durability
			st["down"] = sn.Down
		}
		extra(st)
		outliers := sn.Report.Outliers
		if outliers == nil {
			outliers = []server.Outlier{}
		}
		deadRanks := sn.Report.DeadRanks
		if deadRanks == nil {
			deadRanks = []int{}
		}
		out := map[string]any{
			"gen":          sn.Gen,
			"threshold":    sn.Threshold,
			"watermark_ns": sn.WatermarkNs,
			"outliers":     outliers,
			"degraded":     sn.Report.Degraded,
			"dead_ranks":   deadRanks,
			"confidence":   sn.Report.Confidence,
		}
		last = &obs.ReportSnapshot{
			Gen:      sn.Gen,
			Status:   st,
			Outliers: out,
			Records: func(cursor int) (any, int, int, bool) {
				recs, next, base, ok := sn.RecordsWindow(cursor)
				return recs, next, base, ok
			},
		}
		return last
	}
}

// Durability returns the analysis server's WAL/snapshot statistics; the
// zero value when durability was not enabled (or the run was
// uninstrumented).
func (r *Report) Durability() server.DurabilityStats {
	if r.Server == nil {
		return server.DurabilityStats{}
	}
	return r.Server.DurabilityStats()
}

// Liveness returns every rank's lease state at the end of the run (empty
// without a server). Ranks that never negotiated a lease are always
// reported alive.
func (r *Report) Liveness() []server.RankLiveness {
	if r.Server == nil {
		return nil
	}
	return r.Server.Liveness()
}

// Lineage returns the run's record-lineage tracer, nil unless
// Options.Lineage enabled it. Use it to snapshot the flight recorder
// (Snapshot), read per-stage latency histograms (StageHistogram), or
// export a sampled record's journey into a Chrome trace
// (obs.Tracer.WriteChromeMerged).
func (r *Report) Lineage() *obs.Lineage { return r.lin }

// TotalSeconds returns the job's virtual execution time in seconds.
func (r *Report) TotalSeconds() float64 {
	return float64(r.Result.TotalNs) / 1e9
}

// Findings diagnoses variance structures from the per-type matrices at the
// given column resolution (paper workflow step 8).
func (r *Report) Findings(col time.Duration) []vis.Finding {
	return vis.Diagnose(r.Matrices(col), vis.ReportConfig{})
}

// ReportText renders the user-facing variance report. ranksPerNode > 0
// adds node attribution.
func (r *Report) ReportText(col time.Duration, ranksPerNode int) string {
	return vis.RenderReport(r.Findings(col), ranksPerNode)
}

// TraceEvents returns the baseline tracer's events (nil unless
// Options.Trace was set).
func (r *Report) TraceEvents() []vm.Event {
	if r.Tracer == nil {
		return nil
	}
	return r.Tracer.AllEvents()
}

// SaveData persists the run's performance data (sensor metadata and slice
// records) so matrices and reports can be regenerated later without
// re-running the job (the paper's "Performance Data" artifact).
func (r *Report) SaveData(w io.Writer) error {
	d := &rundata.RunData{
		Ranks:   len(r.Result.Ranks),
		TotalNs: r.Result.TotalNs,
	}
	if r.Instrumented != nil {
		for _, s := range r.Instrumented.Sensors {
			d.Sensors = append(d.Sensors, detect.Sensor{
				ID: s.ID, Type: s.Type, ProcessFixed: s.ProcessFixed, Name: s.Name,
			})
		}
	}
	if r.Server != nil {
		d.Records = r.Server.Records()
	}
	return rundata.Save(w, d)
}
