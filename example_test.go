package vsensor_test

import (
	"fmt"
	"log"
	"time"

	vsensor "vsensor"
	"vsensor/internal/analysis"
	"vsensor/internal/cluster"
	"vsensor/internal/instrument"
	"vsensor/internal/ir"
)

// ExampleAnalyze identifies v-sensors at compile time: the constant inner
// loop is a global sensor, the n-bounded loop is not.
func ExampleAnalyze() {
	src := `
func main() {
    for (int n = 0; n < 100; n++) {
        for (int fixed = 0; fixed < 10; fixed++) {
            flops(100);
        }
        for (int varying = 0; varying < n; varying++) {
            flops(100);
        }
    }
}`
	res, err := vsensor.Analyze(src, analysis.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Funcs["main"].Snippets {
		if s.Loop != nil && s.Loop.IndVar != "n" {
			fmt.Printf("loop %s: global=%v\n", s.Loop.IndVar, s.Global)
		}
	}
	// Output:
	// loop fixed: global=true
	// loop varying: global=false
}

// ExampleInstrumentSource emits the probed source the paper's workflow
// hands back to the original compiler.
func ExampleInstrumentSource() {
	src := `
func main() {
    for (int i = 0; i < 50; i++) {
        mpi_allreduce(64, 1.0);
    }
}`
	out, err := vsensor.InstrumentSource(src, analysis.Config{}, instrument.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	// Output:
	// func main() {
	//     for (int i = 0; i < 50; i = i + 1) {
	//         vs_tick(0);
	//         mpi_allreduce(64, 1.0);
	//         vs_tock(0);
	//     }
	// }
}

// ExampleRun executes the pipeline on a cluster with a degraded node and
// prints the variance report.
func ExampleRun() {
	src := `
func main() {
    for (int i = 0; i < 100; i++) {
        for (int k = 0; k < 20; k++) {
            flops(4000);
        }
    }
}`
	cl := cluster.New(cluster.Config{Nodes: 4, RanksPerNode: 2})
	cl.SetNodeCPUSpeed(3, 0.5) // ranks 6-7 run at half speed

	rep, err := vsensor.Run(src, vsensor.Options{Ranks: 8, Cluster: cl})
	if err != nil {
		log.Fatal(err)
	}
	m := rep.Matrices(time.Millisecond)[ir.Computation]
	for _, band := range m.LowRankBands(0.8, 0.5) {
		fmt.Printf("slow ranks %d-%d\n", band.First, band.Last)
	}
	// Output:
	// slow ranks 6-7
}
